"""Command-line interface: ``repro-vliw``.

Subcommands:

* ``repro-vliw corpus``             -- corpus summary statistics
* ``repro-vliw schedule <kernel>``  -- schedule one named kernel and dump
  the kernel table, queue allocation and a simulation report
* ``repro-vliw experiment <id>``    -- run one paper experiment
  (``experiment --list`` enumerates them)
* ``repro-vliw schedulers``         -- list the registered scheduling
  engines
* ``repro-vliw partitioners``       -- list the registered
  cluster-partitioning engines
* ``repro-vliw report``             -- the headline experiment bundle
* ``repro-vliw bench``              -- run a named benchmark and gate it
  against ``benchmarks/baseline.json`` (the CI perf-smoke check, local)
* ``repro-vliw cache``              -- inspect/clear the result cache

Experiment sweeps honour ``--jobs N`` (parallel workers; output is
byte-identical to the serial run), ``--no-cache`` and ``--cache-dir``;
``schedule`` and ``experiment`` take ``--scheduler`` to pick the
scheduling engine (default ``ims``), ``--partitioner`` to pick the
clustered engine (default ``affinity``) and ``--ii-search`` to pick the
II search mode (``adaptive`` default, ``linear`` for the historical
walk; both produce identical schedules).  Engine names are validated
against the registries before anything compiles, so a typo lists the
available names instead of failing mid-sweep.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.machine.presets import clustered_machine, qrf_machine
from repro.sched.iisearch import DEFAULT_II_SEARCH, II_SEARCH_MODES
from repro.sched.partitioners import (DEFAULT_PARTITIONER,
                                      available_partitioners,
                                      partitioner_descriptions)
from repro.sched.strategies import (DEFAULT_SCHEDULER, available_schedulers,
                                    scheduler_descriptions)
from repro.sim.checker import run_pipeline
from repro.workloads.corpus import bench_corpus, corpus_stats, paper_corpus
from repro.workloads.kernels import KERNELS, kernel

#: experiment id -> (one-line description, driver invocation).  The lambda
#: takes (loops, runner, scheduler, partitioner, ii_search) so
#: ``--scheduler``, ``--partitioner`` and ``--ii-search`` thread through
#: every driver; the compare experiments (``sc``, ``pc``) and the
#: partition ablation sweep all engines themselves.
EXPERIMENTS = {
    "fig3": ("Fig. 3: loops schedulable within N queues",
             lambda ex, l, r, s, p, i: ex.fig3_queue_requirements(
                 l, runner=r, scheduler=s, ii_search=i)),
    "sec2": ("Section 2: copy-insertion impact on II / stage count",
             lambda ex, l, r, s, p, i: ex.sec2_copy_impact(
                 l, runner=r, scheduler=s, ii_search=i)),
    "fig4": ("Fig. 4: II speedup from loop unrolling",
             lambda ex, l, r, s, p, i: ex.fig4_unroll_speedup(
                 l, runner=r, scheduler=s, ii_search=i)),
    "fig6": ("Fig. 6: clustered vs single-cluster II",
             lambda ex, l, r, s, p, i: ex.fig6_ii_variation(
                 l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "sec4": ("Section 4 / Fig. 7: per-cluster queue budgets",
             lambda ex, l, r, s, p, i: ex.sec4_cluster_queues(
                 l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "fig8": ("Fig. 8: IPC sweep, all loops",
             lambda ex, l, r, s, p, i: ex.fig8_ipc(
                 l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "fig9": ("Fig. 9: IPC sweep, resource-constrained loops",
             lambda ex, l, r, s, p, i: ex.fig9_ipc_rc(
                 l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "a1": ("ablation: copy fan-out tree strategy",
           lambda ex, l, r, s, p, i: ex.ablation_copy_tree(
               l, runner=r, scheduler=s, ii_search=i)),
    "a2": ("ablation: cluster-partition heuristic",
           lambda ex, l, r, s, p, i: ex.ablation_partition(
               l, runner=r, scheduler=s, ii_search=i)),
    "a3": ("ablation: explicit inter-cluster MOVE ops",
           lambda ex, l, r, s, p, i: ex.ablation_moves(
               l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "a4": ("sensitivity: inter-cluster ring latency",
           lambda ex, l, r, s, p, i: ex.ring_latency_sensitivity(
               l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "s1": ("supplementary: register pressure, QRF vs conventional RF",
           lambda ex, l, r, s, p, i: ex.register_pressure(
               l, runner=r, scheduler=s, ii_search=i)),
    "e6b": ("spill code under finite queue files",
            lambda ex, l, r, s, p, i: ex.spill_budget(
                l, runner=r, scheduler=s, ii_search=i)),
    "sc": ("scheduler comparison: all registered engines head to head",
           lambda ex, l, r, s, p, i: ex.exp_scheduler_compare(
               l, runner=r, ii_search=i)),
    "pc": ("partitioner comparison: all registered engines head to head",
           lambda ex, l, r, s, p, i: ex.exp_partitioner_compare(
               l, runner=r, scheduler=s, ii_search=i)),
}


def _loops(args) -> list:
    if args.full:
        return paper_corpus()
    return bench_corpus(args.sample)


def _runner(args):
    """Build the sweep-runner config from the CLI flags.

    Caching defaults on (keys are content hashes, so stale entries are
    unreachable); ``--no-cache`` disables it and ``--cache-dir`` (or
    ``$REPRO_CACHE_DIR``) relocates the store.
    """
    from repro.runner import ResultCache, RunnerConfig

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if args.jobs > 1 and sys.stderr.isatty():  # pragma: no cover
        def progress(done, total):
            print(f"\r{done}/{total} jobs", end="", file=sys.stderr,
                  flush=True)
    return RunnerConfig(n_workers=args.jobs, cache=cache,
                        progress=progress)


def cmd_corpus(args) -> int:
    loops = _loops(args)
    print(corpus_stats(loops).render())
    return 0


def cmd_schedule(args) -> int:
    if args.list:
        for name in sorted(KERNELS):
            print(f"{name:<12} {KERNELS[name]().n_ops:3d} ops")
        return 0
    if args.kernel is None:
        print("schedule: kernel name required (or --list)",
              file=sys.stderr)
        return 2
    if args.kernel not in KERNELS:
        print(f"unknown kernel {args.kernel!r}; available: "
              f"{', '.join(sorted(KERNELS))}", file=sys.stderr)
        return 2
    ddg = kernel(args.kernel)
    machine = (clustered_machine(args.clusters) if args.clusters
               else qrf_machine(args.fus))
    res = run_pipeline(ddg, machine, unroll_factor=args.unroll,
                       iterations=args.iterations,
                       scheduler=args.scheduler,
                       partitioner=args.partitioner,
                       ii_search=args.ii_search)
    print(res.schedule.render())
    if args.asm:
        from repro.codegen.encode import render_assembly
        print()
        print(render_assembly(res.schedule, res.usage))
    print()
    for loc, alloc in res.usage.by_location.items():
        print(f"{loc.describe()}: {alloc.n_queues} queues, "
              f"max depth {alloc.max_depth}")
    print()
    sim = res.sim
    print(f"simulated {sim.iterations} iterations: {sim.cycles} cycles, "
          f"{sim.ops_executed} ops, {sim.reads_checked} reads verified, "
          f"dynamic IPC {sim.dynamic_ipc:.2f}")
    return 0


def cmd_experiment(args) -> int:
    from repro.analysis import experiments as ex

    if args.list:
        for exp_id, (descr, _) in EXPERIMENTS.items():
            print(f"{exp_id:<6} {descr}")
        return 0
    if args.id is None:
        print("experiment: id required (or --list)", file=sys.stderr)
        return 2
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; available: "
              f"{', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    _, drive = EXPERIMENTS[args.id]
    print(drive(ex, _loops(args), _runner(args), args.scheduler,
                args.partitioner, args.ii_search).render())
    return 0


def cmd_schedulers(args) -> int:
    for name, descr in scheduler_descriptions().items():
        default = "  (default)" if name == DEFAULT_SCHEDULER else ""
        print(f"{name:<6} {descr}{default}")
    return 0


def cmd_partitioners(args) -> int:
    for name, descr in partitioner_descriptions().items():
        default = "  (default)" if name == DEFAULT_PARTITIONER else ""
        print(f"{name:<14} {descr}{default}")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import full_report

    print(full_report(_loops(args), include_sweep=args.sweep,
                      runner=_runner(args)))
    return 0


def _bench_dir() -> "pathlib.Path":
    """The ``benchmarks/`` directory of the current checkout."""
    import pathlib

    return pathlib.Path.cwd() / "benchmarks"


def _load_telemetry(bench_dir):
    """Import ``benchmarks/telemetry.py`` (not a package) by path."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "repro_bench_telemetry", bench_dir / "telemetry.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_benchmark(bench_file) -> int:
    """Run one benchmark file under pytest in a subprocess (separated out
    so tests can stub the expensive part)."""
    import os
    import pathlib
    import subprocess

    import repro

    env = dict(os.environ)
    pkg_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [pkg_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.run(
        [sys.executable, "-m", "pytest", str(bench_file), "-q"],
        env=env).returncode


def cmd_bench(args) -> int:
    """Run a named benchmark and gate it against the committed baseline.

    ``repro-vliw bench fig6_partition`` is the CI perf-smoke job in one
    local command: it runs ``benchmarks/bench_<name>.py``, reads the
    ``BENCH_<name>.json`` telemetry the benchmark wrote, and compares it
    against ``benchmarks/baseline.json`` with the same tolerance the CI
    gate uses.  Run it from the repository root.
    """
    bench_dir = _bench_dir()
    if not bench_dir.is_dir():
        print(f"bench: no benchmarks/ directory under {bench_dir.parent} "
              f"(run from the repository root)", file=sys.stderr)
        return 2
    names = sorted(p.stem[len("bench_"):]
                   for p in bench_dir.glob("bench_*.py"))
    if args.list:
        for name in names:
            print(name)
        return 0
    if args.name is None:
        print("bench: benchmark name required (or --list)", file=sys.stderr)
        return 2
    if args.name not in names:
        print(f"unknown benchmark {args.name!r}; available: "
              f"{', '.join(names)}", file=sys.stderr)
        return 2

    import time

    telemetry = _load_telemetry(bench_dir)
    started = time.time()
    code = _run_benchmark(bench_dir / f"bench_{args.name}.py")
    if code != 0:
        print(f"bench: benchmark run failed (exit {code})",
              file=sys.stderr)
        return code

    record = telemetry.bench_dir() / f"BENCH_{args.name}.json"
    # records are committed at the repo root, so existence alone is not
    # proof of a run: demand a record written by *this* invocation
    if not record.exists() or record.stat().st_mtime < started - 1:
        print(f"bench: {record} was not (re)written by this run; "
              f"nothing to gate", file=sys.stderr)
        return 2
    baseline = telemetry.load_baseline(bench_dir / "baseline.json")
    if args.name not in baseline["benches"]:
        rec = telemetry.read_bench(record)
        print(f"{args.name}: {rec['wall_s']:.2f}s -- NOT GATED "
              f"(no entry in benchmarks/baseline.json; add one to gate "
              f"this benchmark)")
        return 0
    report, failures = telemetry.check_against_baseline(
        [record], baseline, tolerance=args.tolerance)
    print("baseline comparison:")
    for line in report:
        print(line)
    if failures:
        print(f"\n{len(failures)} perf regression(s) beyond "
              f"{args.tolerance:.2f}x", file=sys.stderr)
        return 1
    print("\nwithin budget")
    return 0


def cmd_cache(args) -> int:
    from repro.runner import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.clear:
        n = len(cache)
        cache.clear()
        print(f"cleared {n} cached results from {cache.path}")
        return 0
    print(f"cache: {cache.path}")
    stats = cache.stats()
    print(f"{stats['entries']} results"
          + (f", {stats['corrupt']} corrupt lines skipped"
             if stats["corrupt"] else ""))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-vliw",
        description=__doc__.splitlines()[0])
    p.add_argument("--sample", type=int, default=None,
                   help="corpus subsample size (default: bench default)")
    p.add_argument("--full", action="store_true",
                   help="use the full 1258-loop corpus")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for experiment sweeps "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-addressed result cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache location (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-vliw)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="corpus statistics")

    ps = sub.add_parser("schedule", help="schedule one named kernel")
    ps.add_argument("kernel", nargs="?", default=None,
                    help=f"one of: {', '.join(sorted(KERNELS))}")
    ps.add_argument("--list", action="store_true",
                    help="list the available kernels and exit")
    ps.add_argument("--fus", type=int, default=4,
                    help="single-cluster machine width (default 4)")
    ps.add_argument("--clusters", type=int, default=0,
                    help="use a clustered machine with N clusters")
    ps.add_argument("--unroll", type=int, default=1)
    ps.add_argument("--iterations", type=int, default=16)
    ps.add_argument("--scheduler", default=DEFAULT_SCHEDULER,
                    choices=available_schedulers(),
                    help="scheduling engine (see `repro-vliw schedulers`)")
    ps.add_argument("--partitioner", default=DEFAULT_PARTITIONER,
                    choices=available_partitioners(),
                    help="cluster-partitioning engine, used with "
                         "--clusters (see `repro-vliw partitioners`)")
    ps.add_argument("--ii-search", default=DEFAULT_II_SEARCH,
                    choices=II_SEARCH_MODES,
                    help="II search mode: adaptive bracketing (default) "
                         "or the historical linear walk -- identical "
                         "schedules either way")
    ps.add_argument("--asm", action="store_true",
                    help="print the queue-addressed assembly listing")

    pe = sub.add_parser("experiment", help="run one paper experiment")
    pe.add_argument("id", nargs="?", default=None,
                    help=f"one of: {', '.join(EXPERIMENTS)}")
    pe.add_argument("--list", action="store_true",
                    help="list the available experiments and exit")
    pe.add_argument("--scheduler", default=DEFAULT_SCHEDULER,
                    choices=available_schedulers(),
                    help="scheduling engine used by the sweep "
                         "(`sc` always compares all engines)")
    pe.add_argument("--partitioner", default=DEFAULT_PARTITIONER,
                    choices=available_partitioners(),
                    help="cluster-partitioning engine used by clustered "
                         "sweeps (`pc` and `a2` always compare all "
                         "engines)")
    pe.add_argument("--ii-search", default=DEFAULT_II_SEARCH,
                    choices=II_SEARCH_MODES,
                    help="II search mode used by every engine in the "
                         "sweep (adaptive default; linear preserves the "
                         "historical walk)")

    sub.add_parser("schedulers",
                   help="list the registered scheduling engines")
    sub.add_parser("partitioners",
                   help="list the registered cluster-partitioning engines")

    pr = sub.add_parser("report", help="headline experiment bundle")
    pr.add_argument("--sweep", action="store_true",
                    help="include the (slow) IPC sweep")

    pb = sub.add_parser(
        "bench", help="run a named benchmark and gate it against "
                      "benchmarks/baseline.json")
    pb.add_argument("name", nargs="?", default=None,
                    help="benchmark name, e.g. fig6_partition "
                         "(see --list)")
    pb.add_argument("--list", action="store_true",
                    help="list the available benchmarks and exit")
    pb.add_argument("--tolerance", type=float, default=1.3,
                    help="allowed wall-time factor over the baseline "
                         "(default 1.3, the CI gate's)")

    pc = sub.add_parser("cache", help="inspect or clear the result cache")
    pc.add_argument("--clear", action="store_true",
                    help="delete all cached results")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "corpus": cmd_corpus,
        "schedule": cmd_schedule,
        "experiment": cmd_experiment,
        "schedulers": cmd_schedulers,
        "partitioners": cmd_partitioners,
        "report": cmd_report,
        "bench": cmd_bench,
        "cache": cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

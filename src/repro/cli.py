"""Command-line interface: ``repro-vliw``.

Subcommands:

* ``repro-vliw corpus``             -- corpus summary statistics
* ``repro-vliw schedule <kernel>``  -- schedule one named kernel and dump
  the kernel table, queue allocation and a simulation report
* ``repro-vliw experiment <id>``    -- run one paper experiment
  (fig3, sec2, fig4, fig6, sec4, fig8, fig9, a1, a2, a3)
* ``repro-vliw report``             -- the headline experiment bundle
* ``repro-vliw cache``              -- inspect/clear the result cache

Experiment sweeps honour ``--jobs N`` (parallel workers; output is
byte-identical to the serial run), ``--no-cache`` and ``--cache-dir``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.machine.presets import clustered_machine, qrf_machine
from repro.sim.checker import run_pipeline
from repro.workloads.corpus import bench_corpus, corpus_stats, paper_corpus
from repro.workloads.kernels import KERNELS, kernel


def _loops(args) -> list:
    if args.full:
        return paper_corpus()
    return bench_corpus(args.sample)


def _runner(args):
    """Build the sweep-runner config from the CLI flags.

    Caching defaults on (keys are content hashes, so stale entries are
    unreachable); ``--no-cache`` disables it and ``--cache-dir`` (or
    ``$REPRO_CACHE_DIR``) relocates the store.
    """
    from repro.runner import ResultCache, RunnerConfig

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if args.jobs > 1 and sys.stderr.isatty():  # pragma: no cover
        def progress(done, total):
            print(f"\r{done}/{total} jobs", end="", file=sys.stderr,
                  flush=True)
    return RunnerConfig(n_workers=args.jobs, cache=cache,
                        progress=progress)


def cmd_corpus(args) -> int:
    loops = _loops(args)
    print(corpus_stats(loops).render())
    return 0


def cmd_schedule(args) -> int:
    if args.kernel not in KERNELS:
        print(f"unknown kernel {args.kernel!r}; available: "
              f"{', '.join(sorted(KERNELS))}", file=sys.stderr)
        return 2
    ddg = kernel(args.kernel)
    machine = (clustered_machine(args.clusters) if args.clusters
               else qrf_machine(args.fus))
    res = run_pipeline(ddg, machine, unroll_factor=args.unroll,
                       iterations=args.iterations)
    print(res.schedule.render())
    if args.asm:
        from repro.codegen.encode import render_assembly
        print()
        print(render_assembly(res.schedule, res.usage))
    print()
    for loc, alloc in res.usage.by_location.items():
        print(f"{loc.describe()}: {alloc.n_queues} queues, "
              f"max depth {alloc.max_depth}")
    print()
    sim = res.sim
    print(f"simulated {sim.iterations} iterations: {sim.cycles} cycles, "
          f"{sim.ops_executed} ops, {sim.reads_checked} reads verified, "
          f"dynamic IPC {sim.dynamic_ipc:.2f}")
    return 0


def cmd_experiment(args) -> int:
    from repro.analysis import experiments as ex

    loops = _loops(args)
    runner = _runner(args)
    table = {
        "fig3": lambda: ex.fig3_queue_requirements(loops, runner=runner),
        "sec2": lambda: ex.sec2_copy_impact(loops, runner=runner),
        "fig4": lambda: ex.fig4_unroll_speedup(loops, runner=runner),
        "fig6": lambda: ex.fig6_ii_variation(loops, runner=runner),
        "sec4": lambda: ex.sec4_cluster_queues(loops, runner=runner),
        "fig8": lambda: ex.fig8_ipc(loops, runner=runner),
        "fig9": lambda: ex.fig9_ipc_rc(loops, runner=runner),
        "a1": lambda: ex.ablation_copy_tree(loops, runner=runner),
        "a2": lambda: ex.ablation_partition(loops, runner=runner),
        "a3": lambda: ex.ablation_moves(loops, runner=runner),
        "a4": lambda: ex.ring_latency_sensitivity(loops, runner=runner),
        "s1": lambda: ex.register_pressure(loops, runner=runner),
        "e6b": lambda: ex.spill_budget(loops, runner=runner),
    }
    if args.id not in table:
        print(f"unknown experiment {args.id!r}; available: "
              f"{', '.join(table)}", file=sys.stderr)
        return 2
    print(table[args.id]().render())
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import full_report

    print(full_report(_loops(args), include_sweep=args.sweep,
                      runner=_runner(args)))
    return 0


def cmd_cache(args) -> int:
    from repro.runner import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.clear:
        n = len(cache)
        cache.clear()
        print(f"cleared {n} cached results from {cache.path}")
        return 0
    print(f"cache: {cache.path}")
    stats = cache.stats()
    print(f"{stats['entries']} results"
          + (f", {stats['corrupt']} corrupt lines skipped"
             if stats["corrupt"] else ""))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-vliw",
        description=__doc__.splitlines()[0])
    p.add_argument("--sample", type=int, default=None,
                   help="corpus subsample size (default: bench default)")
    p.add_argument("--full", action="store_true",
                   help="use the full 1258-loop corpus")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for experiment sweeps "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-addressed result cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache location (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-vliw)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="corpus statistics")

    ps = sub.add_parser("schedule", help="schedule one named kernel")
    ps.add_argument("kernel", help=f"one of: {', '.join(sorted(KERNELS))}")
    ps.add_argument("--fus", type=int, default=4,
                    help="single-cluster machine width (default 4)")
    ps.add_argument("--clusters", type=int, default=0,
                    help="use a clustered machine with N clusters")
    ps.add_argument("--unroll", type=int, default=1)
    ps.add_argument("--iterations", type=int, default=16)
    ps.add_argument("--asm", action="store_true",
                    help="print the queue-addressed assembly listing")

    pe = sub.add_parser("experiment", help="run one paper experiment")
    pe.add_argument("id", help="fig3|sec2|fig4|fig6|sec4|fig8|fig9|a1|a2|a3|a4|s1|e6b")

    pr = sub.add_parser("report", help="headline experiment bundle")
    pr.add_argument("--sweep", action="store_true",
                    help="include the (slow) IPC sweep")

    pc = sub.add_parser("cache", help="inspect or clear the result cache")
    pc.add_argument("--clear", action="store_true",
                    help="delete all cached results")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "corpus": cmd_corpus,
        "schedule": cmd_schedule,
        "experiment": cmd_experiment,
        "report": cmd_report,
        "cache": cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

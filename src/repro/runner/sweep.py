"""Grid builder: scenario sweeps over loops x machines x variants.

``sweep`` expands a full cartesian grid into a flat, deterministically
ordered job list (machine-major, then variant, then loop) ready for
:func:`repro.runner.executor.run_jobs`.  Drivers slice the ordered result
list back into per-(machine, variant) blocks with ``len(loops)`` stride,
and ad-hoc scenario grids (machine presets x unroll x copy strategy x
partition strategy) fall out of passing several variants.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.ir.ddg import Ddg

from .job import CompileJob, PipelineOptions


def as_options(variant: "PipelineOptions | dict | None",
               *, extras: tuple[str, ...] = ()) -> PipelineOptions:
    """Coerce a variant (options object, kwargs dict or None) to options.

    A dict variant may override ``extras``; otherwise the *extras* default
    applies.
    """
    if variant is None:
        return PipelineOptions(extras=extras)
    if isinstance(variant, PipelineOptions):
        return variant
    kwargs = dict(variant)
    kwargs.setdefault("extras", extras)
    kwargs["extras"] = tuple(kwargs["extras"])
    return PipelineOptions(**kwargs)


def sweep(loops: Sequence[Ddg], machines: Iterable,
          variants: Optional[Sequence["PipelineOptions | dict"]] = None,
          *, extras: tuple[str, ...] = ()) -> list[CompileJob]:
    """One job per (machine, variant, loop), in that nesting order."""
    machines = list(machines)
    opts = [as_options(v, extras=extras) for v in (variants or [None])]
    return [CompileJob(ddg=loop, machine=machine, options=opt)
            for machine in machines
            for opt in opts
            for loop in loops]

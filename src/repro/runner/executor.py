"""Parallel job executor with caching and ordered, deterministic results.

``run_jobs`` is the single entry point every experiment driver funnels
through.  The contract:

* results come back **in job order**, regardless of worker count;
* ``execute_job`` is pure, so ``n_workers=1`` and ``n_workers=N`` produce
  identical result lists (a tested invariant -- parallel sweeps must be
  byte-identical to serial ones);
* jobs whose key is already in the cache are replayed without compiling;
* any failure to fan out (unpicklable payloads, fork bombs disabled,
  exhausted file descriptors) degrades gracefully to the serial path.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.obs import trace as _trace

from . import pool as pool_mod
from .cache import ResultCache
from .job import CompileJob, JobResult
from .pipeline import execute_job


@dataclass
class RunnerConfig:
    """How a sweep executes: parallelism, caching, progress reporting.

    ``progress`` is called as ``progress(done, total)`` after every job
    settles (cache hit or fresh compile).  ``chunk_size`` overrides how
    many tasks each worker pulls at once; by default the persistent pool
    derives it from the job count and stripes cost-ranked tasks across
    chunks.
    """

    n_workers: int = 1
    cache: Optional[ResultCache] = None
    progress: Optional[Callable[[int, int], None]] = None
    chunk_size: Optional[int] = None


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the corpus); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _run_parallel(jobs: Sequence[CompileJob], config: RunnerConfig,
                  tick: Callable[[], None]) -> list[JobResult]:
    """Ordered fan-out over the persistent pool, serial completion on
    failure.

    The pool session (one per worker count) survives across ``run_jobs``
    calls: workers are initialized once with the deduplicated machine /
    corpus payload and reuse their scheduling arenas job to job.  Any
    fan-out failure discards the session and finishes the remaining jobs
    serially -- a sweep is never lost to a broken pool.
    """
    results: list[Optional[JobResult]] = [None] * len(jobs)
    merge_traces = _trace.tracing_enabled()

    def on_result(seq: int, result: JobResult) -> None:
        results[seq] = result
        if merge_traces:
            # worker-side spans never reach this process's aggregate;
            # the per-job summary on the result is how they come home
            _trace.merge_job_trace(result.extras.get("trace"))
        tick()

    try:
        with _trace.span("runner.dispatch"):
            session = pool_mod.get_session(config.n_workers,
                                           _pool_context)
            session.run(jobs, on_result,
                        pool_mod.cost_estimator(config.cache),
                        chunk_size=config.chunk_size)
    except Exception as exc:
        pool_mod.discard_session(config.n_workers, cause=exc)
        # serial completion records into this process directly -- the
        # remaining results carry no foreign trace to merge
        for seq, job in enumerate(jobs):
            if results[seq] is None:
                results[seq] = execute_job(job)
                tick()
    return results  # type: ignore[return-value]


def run_jobs(jobs: Sequence[CompileJob],
             config: Optional[RunnerConfig] = None) -> list[JobResult]:
    """Execute *jobs*, returning one :class:`JobResult` per job, in order.

    With no *config* this is a plain serial, uncached sweep -- the exact
    behaviour the experiment drivers had before the runner existed.
    """
    config = config or RunnerConfig()
    jobs = list(jobs)
    total = len(jobs)
    results: list[Optional[JobResult]] = [None] * total
    settled = 0

    def tick() -> None:
        nonlocal settled
        settled += 1
        if config.progress is not None:
            config.progress(settled, total)

    pending: list[int] = []
    traced = _trace.tracing_enabled()
    with _trace.span("runner.cache_lookup"):
        for i, job in enumerate(jobs):
            hit = (config.cache.get(job.key)
                   if config.cache is not None else None)
            if hit is not None:
                results[i] = hit
                tick()
            else:
                pending.append(i)
    if traced and config.cache is not None:
        _trace.trace_count("runner.cache_hits", total - len(pending))
        _trace.trace_count("runner.cache_misses", len(pending))

    if pending:
        todo = [jobs[i] for i in pending]
        if config.n_workers > 1 and len(todo) > 1:
            fresh = _run_parallel(todo, config, tick)
        else:
            fresh = []
            for job in todo:
                fresh.append(execute_job(job))
                tick()
        for i, result in zip(pending, fresh):
            results[i] = result
        if config.cache is not None:
            config.cache.put_many(fresh)

    return results  # type: ignore[return-value]

"""Parallel job executor with caching and ordered, deterministic results.

``run_jobs`` is the single entry point every experiment driver funnels
through.  The contract:

* results come back **in job order**, regardless of worker count;
* ``execute_job`` is pure, so ``n_workers=1`` and ``n_workers=N`` produce
  identical result lists (a tested invariant -- parallel sweeps must be
  byte-identical to serial ones);
* jobs whose key is already in the cache are replayed without compiling;
* one job is one failure domain: worker crashes and hangs are absorbed
  by the pool session's watchdog/retry/quarantine supervision, in-job
  exceptions become error-kind failed results (never cached), and cache
  I/O failures degrade lookups to misses and stores to no-ops -- a
  sweep is never lost to a broken pool, a poisonous job or a bad disk.
"""

from __future__ import annotations

import logging
import multiprocessing
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro import faults as _faults
from repro.obs import trace as _trace

from . import pool as pool_mod
from .cache import ResultCache
from .job import CompileJob, JobResult
from .pipeline import execute_job

log = logging.getLogger("repro.runner.executor")


@dataclass
class RunnerConfig:
    """How a sweep executes: parallelism, caching, progress, supervision.

    ``progress`` is called as ``progress(done, total)`` after every job
    settles (cache hit or fresh compile).  ``chunk_size`` overrides how
    many tasks each worker pulls at once; by default the persistent pool
    derives it from the job count and stripes cost-ranked tasks across
    chunks.  ``job_deadline_s`` is the fan-out watchdog (None disables
    it); ``max_retries`` bounds how many dispatch rounds a job may ride
    before it is quarantined to the serial path (the serial run counts
    as the final retry, so a job executes at most ``1 + max_retries``
    times).
    """

    n_workers: int = 1
    cache: Optional[ResultCache] = None
    progress: Optional[Callable[[int, int], None]] = None
    chunk_size: Optional[int] = None
    job_deadline_s: Optional[float] = pool_mod.DEFAULT_JOB_DEADLINE_S
    max_retries: int = pool_mod.DEFAULT_MAX_RETRIES


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the corpus); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _run_parallel(jobs: Sequence[CompileJob], config: RunnerConfig,
                  tick: Callable[[], None]) -> list[JobResult]:
    """Ordered fan-out over the persistent pool, serial completion of
    whatever the pool could not deliver.

    The pool session (one per worker count) survives across ``run_jobs``
    calls: workers are initialized once with the deduplicated machine /
    corpus payload and reuse their scheduling arenas job to job.  Worker
    crashes and hangs are the session's problem (watchdog + respawn +
    quarantine, the pool stays alive); only a failure of the fan-out
    machinery itself -- or of the caller's own callbacks -- still
    discards the session.  Either way the jobs left unsettled finish on
    the serial path below, so a sweep is never lost.
    """
    results: list[Optional[JobResult]] = [None] * len(jobs)
    merge_traces = _trace.tracing_enabled()

    def on_result(seq: int, result: JobResult) -> None:
        results[seq] = result
        if merge_traces:
            # worker-side spans never reach this process's aggregate;
            # the per-job summary on the result is how they come home
            _trace.merge_job_trace(result.extras.get("trace"))
        tick()

    try:
        with _trace.span("runner.dispatch"):
            session = pool_mod.get_session(config.n_workers,
                                           _pool_context)
            quarantined = session.run(
                jobs, on_result, pool_mod.cost_estimator(config.cache),
                chunk_size=config.chunk_size,
                deadline_s=config.job_deadline_s,
                max_retries=config.max_retries)
            if quarantined:
                _trace.trace_count("runner.quarantined",
                                   len(quarantined))
    except Exception as exc:
        pool_mod.discard_session(config.n_workers, cause=exc)
    # serial completion of the undelivered seqs -- quarantined repeat
    # offenders, or everything unsettled after a discarded session.
    # Settled seqs are final: a job whose result was already reported
    # must not run twice (exactly-once accounting)
    for seq, job in enumerate(jobs):
        if results[seq] is None:
            _faults.on_job_execute(job.key)
            results[seq] = execute_job(job)
            tick()
    return results  # type: ignore[return-value]


def _cache_get(cache: ResultCache, key: str) -> Optional[JobResult]:
    """A lookup that treats cache I/O failure as a miss (counted)."""
    try:
        return cache.get(key)
    except Exception as exc:
        _trace.trace_count("runner.cache_errors")
        log.warning("cache lookup failed (%s: %s); treating as a miss",
                    type(exc).__name__, exc)
        return None


def run_jobs(jobs: Sequence[CompileJob],
             config: Optional[RunnerConfig] = None) -> list[JobResult]:
    """Execute *jobs*, returning one :class:`JobResult` per job, in order.

    With no *config* this is a plain serial, uncached sweep -- the exact
    behaviour the experiment drivers had before the runner existed.
    """
    config = config or RunnerConfig()
    jobs = list(jobs)
    total = len(jobs)
    results: list[Optional[JobResult]] = [None] * total
    settled = 0

    def tick() -> None:
        nonlocal settled
        settled += 1
        if config.progress is not None:
            config.progress(settled, total)

    pending: list[int] = []
    traced = _trace.tracing_enabled()
    with _trace.span("runner.cache_lookup"):
        for i, job in enumerate(jobs):
            hit = (_cache_get(config.cache, job.key)
                   if config.cache is not None else None)
            if hit is not None:
                results[i] = hit
                tick()
            else:
                pending.append(i)
    if traced and config.cache is not None:
        _trace.trace_count("runner.cache_hits", total - len(pending))
        _trace.trace_count("runner.cache_misses", len(pending))

    if pending:
        todo = [jobs[i] for i in pending]
        if config.n_workers > 1 and len(todo) > 1:
            fresh = _run_parallel(todo, config, tick)
        else:
            fresh = []
            for job in todo:
                _faults.on_job_execute(job.key)
                fresh.append(execute_job(job))
                tick()
        for i, result in zip(pending, fresh):
            results[i] = result
        if config.cache is not None:
            # error-kind results are transient infrastructure failures,
            # not compilation outcomes: caching one would pin the fault
            durable = [r for r in fresh if not r.outcome.error]
            try:
                config.cache.put_many(durable)
            except Exception as exc:
                _trace.trace_count("runner.cache_errors")
                log.warning(
                    "cache store of %d result(s) failed (%s: %s); sweep "
                    "results are unaffected", len(durable),
                    type(exc).__name__, exc)

    return results  # type: ignore[return-value]

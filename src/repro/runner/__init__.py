"""Parallel sweep runner with a content-addressed result cache.

The runner turns every paper experiment into a list of
:class:`~repro.runner.job.CompileJob` units (loop DDG x machine x pipeline
options), executes them with :func:`~repro.runner.executor.run_jobs` --
serially or fanned out over worker processes, always returning ordered,
deterministic results -- and memoises each job's plain-data
:class:`~repro.runner.job.JobResult` in an on-disk JSONL cache keyed by a
SHA-256 content hash of the job (see :mod:`repro.runner.fingerprint`).
Repeated sweeps are therefore incremental: identical jobs replay from the
cache without recompiling.

Typical use::

    from repro.runner import RunnerConfig, ResultCache, run_jobs, sweep

    jobs = sweep(loops, machines, [dict(copies=True, allocate=True)])
    results = run_jobs(jobs, RunnerConfig(n_workers=4, cache=ResultCache()))

The CLI exposes this as ``repro-vliw --jobs N [--no-cache] experiment/
report``; benchmarks pick the same knobs up from ``REPRO_JOBS`` /
``REPRO_NO_CACHE`` / ``REPRO_CACHE_DIR``.
"""

from .cache import (CACHE_DIR_ENV, ResultCache, ShardedResultCache,
                    default_cache_dir, open_cache)
from .executor import RunnerConfig, run_jobs
from .fingerprint import (SCHEMA_VERSION, ddg_signature, job_key,
                          machine_signature)
from .job import CompileJob, JobResult, PipelineOptions
from .pipeline import (CompiledLoop, compile_loop, compute_extra,
                       execute_job, spill_spec)
from .pool import PoolSession, close_all_sessions, get_session
from .sweep import as_options, sweep

__all__ = [
    "CACHE_DIR_ENV", "ResultCache", "ShardedResultCache",
    "default_cache_dir", "open_cache",
    "RunnerConfig", "run_jobs",
    "PoolSession", "close_all_sessions", "get_session",
    "SCHEMA_VERSION", "ddg_signature", "job_key", "machine_signature",
    "CompileJob", "JobResult", "PipelineOptions",
    "CompiledLoop", "compile_loop", "compute_extra", "execute_job",
    "spill_spec",
    "as_options", "sweep",
]

"""Job model of the sweep runner.

A :class:`CompileJob` is one (loop DDG, machine, pipeline options) triple:
the unit of work that :func:`repro.runner.executor.run_jobs` fans out over
worker processes.  Jobs are picklable, and each one owns a deterministic
content-hash ``key`` (see :mod:`repro.runner.fingerprint`) under which its
:class:`JobResult` is stored in the on-disk cache.

A :class:`JobResult` deliberately carries only plain data -- the
:class:`~repro.analysis.metrics.LoopOutcome` record plus any requested
``extras`` (JSON-shaped derived metrics computed in the worker) -- never
schedule or allocation objects, so results round-trip losslessly through
both ``pickle`` (process boundary) and JSON (cache file).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.metrics import LoopOutcome
from repro.ir.ddg import Ddg
from repro.sched.iisearch import DEFAULT_II_SEARCH
from repro.sched.partitioners import DEFAULT_PARTITIONER
from repro.sched.strategies import DEFAULT_SCHEDULER

from .fingerprint import job_key


@dataclass(frozen=True)
class PipelineOptions:
    """Pipeline configuration of one job (mirrors ``compile_loop``).

    ``scheduler`` names the single-cluster scheduling engine (see
    :mod:`repro.sched.strategies`) and ``partitioner`` the clustered
    engine (see :mod:`repro.sched.partitioners`); both participate in the
    job signature, so cached results can never alias across engines.

    ``extras`` names derived metrics to compute in the worker after the
    pipeline runs; see ``EXTRA_EXTRACTORS`` in
    :mod:`repro.runner.pipeline` for the registry (an entry may carry an
    argument after a colon, e.g. ``"spills:8x16"``).
    """

    do_unroll: bool = False
    unroll_factor: Optional[int] = None
    copies: bool = True
    copy_strategy: str = "slack"
    allocate: bool = True
    partitioner: str = DEFAULT_PARTITIONER
    use_moves: bool = False
    scheduler: str = DEFAULT_SCHEDULER
    ii_search: str = DEFAULT_II_SEARCH
    #: prove the schedule with the independent verifier
    #: (:mod:`repro.verify`) before the result leaves the worker; a
    #: failed proof raises instead of producing a result
    verify: bool = False
    extras: tuple[str, ...] = ()

    def compile_kwargs(self) -> dict:
        """Keyword arguments for ``compile_loop`` (extras excluded)."""
        out = {f.name: getattr(self, f.name)
               for f in dataclasses.fields(self)}
        out.pop("extras")
        return out

    def signature(self) -> dict:
        """JSON-shaped content signature (feeds the job key)."""
        sig = {f.name: getattr(self, f.name)
               for f in dataclasses.fields(self)}
        sig["extras"] = list(self.extras)
        return sig


@dataclass
class CompileJob:
    """One unit of work: compile *ddg* on *machine* under *options*."""

    ddg: Ddg
    machine: object  # Machine | ClusteredMachine
    options: PipelineOptions = field(default_factory=PipelineOptions)
    _key: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def key(self) -> str:
        """Content-hash identity of this job (cached after first use)."""
        if self._key is None:
            self._key = job_key(self.ddg, self.machine,
                                self.options.signature())
        return self._key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompileJob({self.ddg.name!r}, "
                f"{getattr(self.machine, 'name', self.machine)!r})")


@dataclass
class JobResult:
    """Plain-data outcome of one job.

    ``cached`` is True when the result was replayed from the on-disk
    cache instead of recompiled; ``wall_s`` is the worker-side compile
    time (the job-cost estimate future sweeps use to balance chunked
    dispatch).  Neither participates in equality, so cached and fresh
    runs compare identical.
    """

    key: str
    outcome: LoopOutcome
    extras: dict = field(default_factory=dict)
    cached: bool = field(default=False, compare=False)
    wall_s: float = field(default=0.0, compare=False)

    def to_record(self) -> dict:
        """JSON-shaped cache record."""
        return {
            "key": self.key,
            "outcome": dataclasses.asdict(self.outcome),
            "extras": self.extras,
            "wall_s": round(self.wall_s, 6),
        }

    @classmethod
    def from_record(cls, record: dict, *, cached: bool = True) -> "JobResult":
        """Rebuild a result from a cache record.

        Raises ``KeyError``/``TypeError`` on malformed records; the cache
        treats those as corrupt entries and recompiles.  ``wall_s`` is
        optional so pre-existing records stay readable.
        """
        outcome = LoopOutcome(**record["outcome"])
        return cls(key=record["key"], outcome=outcome,
                   extras=dict(record.get("extras") or {}), cached=cached,
                   wall_s=float(record.get("wall_s") or 0.0))

"""The compile pipeline executed by every job, plus the extras registry.

``compile_loop`` is the shared (unroll ->) (copy-insert ->) schedule
(-> allocate queues) pipeline that all experiment drivers run; it lives
here (rather than in :mod:`repro.analysis.experiments`, its original home)
so worker processes import only the runner subsystem.  The analysis layer
re-exports it unchanged.

Because :class:`~repro.runner.job.JobResult` carries only plain data, a
driver that needs more than the :class:`~repro.analysis.metrics.LoopOutcome`
(queue locations, conventional-RF register demand, spill counts under a
hardware budget) asks for named **extras**: JSON-shaped derived metrics
computed inside the worker, where the schedule object still exists.  An
extras spec is ``"name"`` or ``"name:arg"``; see ``EXTRA_EXTRACTORS``.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.metrics import LoopOutcome
from repro.faults import fault_point
from repro.ir.copyins import insert_copies
from repro.ir.ddg import Ddg
from repro.ir.unroll import select_unroll_factor, unroll
from repro.machine.cluster import ClusteredMachine
from repro.machine.machine import Machine
from repro.obs.trace import (job_capture, span, trace_count,
                             tracing_enabled)
from repro.regalloc.queues import allocate_for_schedule
from repro.sched.iisearch import DEFAULT_II_SEARCH, check_ii_search
from repro.sched.mii import mii_report
from repro.sched.partition import (PartitionConfig, partitioned_schedule,
                                   schedule_with_moves)
from repro.sched.partitioners import (DEFAULT_PARTITIONER,
                                      check_partitioner)
from repro.sched.schedule import SchedulingError
from repro.sched.strategies import (DEFAULT_SCHEDULER, check_scheduler,
                                    get_scheduler)
from repro.verify import VerificationError, verify_schedule

from .job import CompileJob, JobResult

#: caps for the automatic unroll policy (the paper's large loops "do not
#: require unrolling to exploit efficiently the machine resources")
UNROLL_MAX_FACTOR = 8
UNROLL_MAX_OPS = 128

#: Front-end memo: the (unroll ->) copy-insert prefix of the pipeline is
#: machine-independent, but sweeps compile the same loop object on many
#: machines (fig6: four machines per loop; fig8/9: every preset).  Keyed
#: by source-DDG identity + structural version, so any mutation of the
#: source invalidates its entries; the memoised work DDG is consumed
#: strictly read-only downstream (schedulers retime *copies*), which also
#: lets its packed ``arrays()`` lowering be shared across machines.
_FRONTEND_MEMO: "weakref.WeakKeyDictionary[Ddg, dict]" = \
    weakref.WeakKeyDictionary()


def _frontend(ddg: Ddg, factor: int, copies: bool,
              copy_strategy: str) -> tuple[Ddg, int]:
    """Memoised (unroll ->) copy-insert prefix: ``(work, n_copies)``."""
    per_ddg = _FRONTEND_MEMO.get(ddg)
    if per_ddg is None or per_ddg.get("version") != ddg._version:
        per_ddg = {"version": ddg._version}
        _FRONTEND_MEMO[ddg] = per_ddg
    key = (factor, copies, copy_strategy)
    hit = per_ddg.get(key)
    if hit is not None:
        return hit
    work = unroll(ddg, factor) if factor > 1 else ddg
    n_copies = 0
    if copies:
        res = insert_copies(work, strategy=copy_strategy)  # type: ignore[arg-type]
        work, n_copies = res.ddg, res.n_copies
    if work is not ddg:
        # the identity case recomputes nothing -- and storing it would
        # make the weak-keyed entry strongly self-referential (immortal)
        per_ddg[key] = (work, n_copies)
    return work, n_copies


@dataclass
class CompiledLoop:
    """Pipeline artefacts for one (loop, machine) pair."""

    outcome: LoopOutcome
    schedule: object = None
    usage: object = None
    work: Optional[Ddg] = None


def compile_loop(ddg: Ddg, machine: "Machine | ClusteredMachine", *,
                 do_unroll: bool = False,
                 unroll_factor: Optional[int] = None,
                 copies: bool = True,
                 copy_strategy: str = "slack",
                 allocate: bool = True,
                 partitioner: str = DEFAULT_PARTITIONER,
                 use_moves: bool = False,
                 scheduler: str = DEFAULT_SCHEDULER,
                 ii_search: str = DEFAULT_II_SEARCH,
                 verify: bool = False) -> CompiledLoop:
    """Run (unroll ->) (copy-insert ->) schedule (-> allocate queues).

    ``scheduler`` selects the single-cluster scheduling engine from the
    :mod:`repro.sched.strategies` registry; clustered machines always go
    through a partitioning engine, selected by name from the
    :mod:`repro.sched.partitioners` registry via ``partitioner`` (the
    space/time search embeds IMS's eviction machinery -- see DESIGN.md
    §6).  ``ii_search`` picks the II search mode for either engine kind
    (see :mod:`repro.sched.iisearch`).  Scheduling failures produce a
    ``failed`` outcome instead of raising, so corpus sweeps always
    complete.

    ``verify`` runs the independent checker (:mod:`repro.verify`) over
    the finished schedule and raises
    :class:`~repro.verify.VerificationError` if any invariant fails --
    unlike a scheduling failure, a broken *successful* schedule is a
    compiler bug, never a workload property.
    """
    # fail fast on engine-name typos: the same registry-listing error
    # whether the name arrives from the CLI, the service, or a library
    # caller, and before any scheduling work is spent
    check_scheduler(scheduler)
    check_partitioner(partitioner)
    check_ii_search(ii_search)
    factor = 1
    if unroll_factor is not None:
        factor = unroll_factor
    elif do_unroll:
        factor = select_unroll_factor(
            ddg, _fu_counts(machine), max_factor=UNROLL_MAX_FACTOR,
            max_ops=UNROLL_MAX_OPS).factor
        if factor > 1:
            # a production compiler keeps whichever version wins: compile
            # both and fall back to the rolled loop when the unrolled
            # schedule's per-iteration II is no better (the estimate is a
            # bound, not a guarantee)
            rolled = compile_loop(
                ddg, machine, copies=copies, copy_strategy=copy_strategy,
                allocate=False, partitioner=partitioner,
                use_moves=use_moves, scheduler=scheduler,
                ii_search=ii_search, verify=verify)
            unrolled = compile_loop(
                ddg, machine, unroll_factor=factor, copies=copies,
                copy_strategy=copy_strategy, allocate=allocate,
                partitioner=partitioner,
                use_moves=use_moves, scheduler=scheduler,
                ii_search=ii_search, verify=verify)
            if (unrolled.outcome.failed
                    or rolled.outcome.failed
                    or unrolled.outcome.ii_per_iteration
                    <= rolled.outcome.ii_per_iteration + 1e-9):
                if not unrolled.outcome.failed:
                    return unrolled
            if allocate and not rolled.outcome.failed:
                rolled = compile_loop(
                    ddg, machine, unroll_factor=1, copies=copies,
                    copy_strategy=copy_strategy, allocate=True,
                    partitioner=partitioner,
                    use_moves=use_moves, scheduler=scheduler,
                    ii_search=ii_search, verify=verify)
            return rolled
        factor = 1
    with span("pipeline.frontend"):
        work, n_copies = _frontend(ddg, factor, copies, copy_strategy)

    clustered = isinstance(machine, ClusteredMachine)
    with span("pipeline.mii"):
        report = mii_report(work, machine)
    try:
        with span("pipeline.schedule"):
            if clustered and use_moves:
                sched = schedule_with_moves(
                    work, machine,
                    config=PartitionConfig(partitioner=partitioner,
                                           ii_search=ii_search)
                ).schedule
            elif clustered:
                sched = partitioned_schedule(
                    work, machine,
                    config=PartitionConfig(partitioner=partitioner,
                                           ii_search=ii_search))
            else:
                sched = get_scheduler(scheduler).schedule(
                    work, machine, ii_search=ii_search).schedule
    except SchedulingError:
        return CompiledLoop(outcome=LoopOutcome(
            loop=ddg.name, machine=machine.name,
            n_source_ops=ddg.n_ops, n_body_ops=work.n_ops,
            unroll_factor=factor, n_copies=n_copies,
            ii=0, mii=report.mii, res_mii=report.res, rec_mii=report.rec,
            stage_count=0, trip_count=ddg.trip_count, failed=True))

    usage = None
    total_queues = max_depth = None
    if allocate:
        with span("pipeline.allocate"):
            usage = allocate_for_schedule(
                sched, machine if clustered else None)
        total_queues = usage.total_queues
        max_depth = usage.max_depth

    if verify:
        with span("pipeline.verify"):
            verdict = verify_schedule(sched, machine)
        if not verdict.ok:
            raise VerificationError(verdict)

    # MII of the *scheduled* ddg can exceed the pre-move report; recompute
    # cheaply off the schedule's ddg only when moves were added
    outcome = LoopOutcome(
        loop=ddg.name, machine=machine.name,
        n_source_ops=ddg.n_ops, n_body_ops=sched.n_ops,
        unroll_factor=factor, n_copies=n_copies,
        ii=sched.ii, mii=report.mii, res_mii=report.res,
        rec_mii=report.rec, stage_count=sched.stage_count,
        trip_count=ddg.trip_count,
        total_queues=total_queues, max_queue_depth=max_depth)
    return CompiledLoop(outcome=outcome, schedule=sched, usage=usage,
                        work=work)


def _fu_counts(machine: "Machine | ClusteredMachine") -> dict:
    from repro.ir.operations import FuType
    return {t: machine.capacity(t)
            for t in (FuType.LS, FuType.ADD, FuType.MUL)}


# ---------------------------------------------------------------------------
# extras: derived metrics computed in the worker
# ---------------------------------------------------------------------------

def _extra_queue_locations(compiled: CompiledLoop, arg: str) -> object:
    """Per-location queue allocation summary (Sec. 4 / Fig. 7 driver)."""
    if compiled.usage is None:
        return None
    return [{"kind": loc.kind.value, "cluster": loc.cluster,
             "n_queues": alloc.n_queues, "max_depth": alloc.max_depth}
            for loc, alloc in compiled.usage.by_location.items()]


def _extra_crf_registers(compiled: CompiledLoop, arg: str) -> object:
    """Conventional-RF register demand of the schedule (S1 / S2 drivers)."""
    from repro.regalloc.conventional import register_requirement
    from repro.regalloc.rotating import (mve_register_requirement,
                                         rotating_register_requirement)

    if compiled.schedule is None:
        return None
    rep = register_requirement(compiled.schedule)
    mrep = mve_register_requirement(compiled.schedule)
    return {"max_live": rep.max_live,
            "rotating": rotating_register_requirement(compiled.schedule),
            "mve_regs": mrep.registers,
            "mve_unroll": mrep.kernel_unroll}


def _extra_spills(compiled: CompiledLoop, arg: str) -> object:
    """Spill counts under each ``QxP`` hardware budget in *arg* (E6b)."""
    from repro.regalloc.lifetimes import extract_lifetimes
    from repro.regalloc.spill import allocate_with_budget

    if compiled.schedule is None:
        return None
    lifetimes = extract_lifetimes(compiled.schedule)
    out = {}
    for part in arg.split(","):
        q, p = part.split("x")
        rep = allocate_with_budget(lifetimes, compiled.schedule.ii,
                                   max_queues=int(q), max_positions=int(p))
        out[part] = {"fits": rep.fits, "n_spilled": rep.n_spilled}
    return out


def _extra_cluster_stats(compiled: CompiledLoop, arg: str) -> object:
    """Spatial quality of a clustered schedule (PC driver): how many
    values cross the ring, and the per-cluster MaxLive peak."""
    from repro.regalloc.lifetimes import Lifetime, max_live

    sched = compiled.schedule
    if sched is None or sched.n_clusters <= 1:
        return None
    ddg = sched.ddg
    cluster_of = sched.cluster_of
    inter = 0
    per_cluster: dict[int, list[Lifetime]] = {}
    for e in ddg.data_edges():
        if cluster_of[e.src] != cluster_of[e.dst]:
            inter += 1
        start = sched.sigma[e.src] + e.latency
        end = sched.sigma[e.dst] + e.distance * sched.ii
        per_cluster.setdefault(cluster_of[e.src], []).append(
            Lifetime(e.src, e.dst, e.key, start, end - start, e.distance))
    live = {c: max_live(lts, sched.ii)
            for c, lts in per_cluster.items()}
    return {"inter_cluster_edges": inter,
            "max_cluster_live": max(live.values(), default=0),
            "per_cluster_live": {str(c): v
                                 for c, v in sorted(live.items())}}


def _extra_sched_stats(compiled: CompiledLoop, arg: str) -> object:
    """Search-effort counters of the scheduling engine (SC driver)."""
    if compiled.schedule is None:
        return None
    stats = compiled.schedule.stats
    return {"attempts": stats.attempts, "evictions": stats.evictions,
            "iis_tried": stats.iis_tried}


#: Registry of extras extractors; keyed by the name before the colon.
EXTRA_EXTRACTORS: dict[str, Callable[[CompiledLoop, str], object]] = {
    "queue_locations": _extra_queue_locations,
    "crf_registers": _extra_crf_registers,
    "spills": _extra_spills,
    "sched_stats": _extra_sched_stats,
    "cluster_stats": _extra_cluster_stats,
}


def spill_spec(budgets: Sequence[tuple[int, int]]) -> str:
    """Extras spec string for :func:`_extra_spills`, e.g. ``"spills:8x16"``."""
    return "spills:" + ",".join(f"{q}x{p}" for q, p in budgets)


def compute_extra(spec: str, compiled: CompiledLoop) -> object:
    """Evaluate one extras spec against a compiled loop."""
    name, _, arg = spec.partition(":")
    try:
        extractor = EXTRA_EXTRACTORS[name]
    except KeyError:
        raise KeyError(f"unknown extras spec {spec!r}; known: "
                       f"{', '.join(sorted(EXTRA_EXTRACTORS))}") from None
    return extractor(compiled, arg)


def error_result(job: CompileJob, exc: BaseException, *,
                 wall_s: float = 0.0) -> JobResult:
    """A structured failed :class:`JobResult` for an in-job blow-up.

    The error kind (``outcome.error``) carries the exception so sweeps
    can report *what* broke per job; callers treat these like scheduling
    failures (one failed row) but never cache them -- a transient fault
    must cost one recompile, not a poisoned cache entry.
    """
    outcome = LoopOutcome(
        loop=job.ddg.name,
        machine=getattr(job.machine, "name", type(job.machine).__name__),
        n_source_ops=job.ddg.n_ops, n_body_ops=job.ddg.n_ops,
        unroll_factor=1, n_copies=0, ii=0, mii=0, res_mii=0, rec_mii=0,
        stage_count=0, trip_count=job.ddg.trip_count, failed=True,
        error=f"{type(exc).__name__}: {exc}")
    return JobResult(key=job.key, outcome=outcome, wall_s=wall_s)


def execute_job(job: CompileJob) -> JobResult:
    """Run one job's pipeline and extras; the worker-process entry point.

    Pure: the result depends only on the job's content, which is what
    makes parallel and serial sweeps bit-identical and results cacheable
    under the job key.  ``wall_s`` (excluded from equality) records the
    compile time -- the cost estimate the persistent pool's chunked
    dispatch reads back from cache records.

    **Failure containment**: one job is one failure domain.  Anything
    the pipeline raises beyond the expected ``SchedulingError`` (already
    folded into the outcome by ``compile_loop``) -- a verifier rejection,
    an extras extractor bug, an injected fault -- becomes an error-kind
    failed result instead of poisoning the whole fan-out; see
    :func:`error_result`.
    """
    t0 = time.perf_counter()
    try:
        fault_point("job.execute", job.key)
        capture = job_capture() if tracing_enabled() else None
        if capture is not None:
            with capture:
                compiled = compile_loop(job.ddg, job.machine,
                                        **job.options.compile_kwargs())
        else:
            compiled = compile_loop(job.ddg, job.machine,
                                    **job.options.compile_kwargs())
        extras = {}
        for spec in job.options.extras:
            extras[spec] = (None if compiled.outcome.failed
                            else compute_extra(spec, compiled))
        if capture is not None:
            # the per-job stage summary rides home on the result, crossing
            # the worker-process boundary; run_jobs folds it into the parent
            extras["trace"] = capture.summary
        return JobResult(key=job.key, outcome=compiled.outcome,
                         extras=extras,
                         wall_s=time.perf_counter() - t0)
    except Exception as exc:
        trace_count("runner.job_errors")
        return error_result(job, exc, wall_s=time.perf_counter() - t0)

"""Deterministic content fingerprints for compile jobs.

A job's cache key must be a pure function of everything that can change
its result: the loop DDG (ops, edges, latencies, trip count), the machine
description (FU mix, register-file kind, latency overrides, queue budget,
cluster topology) and the pipeline options.  Everything is canonicalised
into a JSON document with sorted keys and hashed with SHA-256, so keys are
stable across processes, interpreter runs and machines -- the property the
content-addressed result cache relies on.

``SCHEMA_VERSION`` is folded into every key; bump it whenever the meaning
of a signature field (or of a cached record) changes, and stale cache
entries become unreachable instead of wrong.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.ddg import Ddg
    from repro.machine.cluster import ClusteredMachine
    from repro.machine.machine import Machine

#: Bump on any change to signature layout or cached-record semantics.
#: v2: options signature gained the ``scheduler`` engine name.
#: v3: ``partition_strategy`` became the registry-backed ``partitioner``
#:     (same default, new field name and engine set -- keys must never
#:     alias against v2 entries).
#: v4: options signature gained ``ii_search`` (the II search mode) and
#:     cached records gained the optional ``wall_s`` cost estimate.
#: v5: options signature gained ``verify`` (the static schedule proof);
#:     a verified and an unverified compile must never share a record.
SCHEMA_VERSION = 5


def canonical_json(obj: object) -> str:
    """Canonical (sorted-key, minimal-separator) JSON encoding."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def ddg_signature(ddg: "Ddg") -> dict:
    """Structure-complete signature of a loop DDG.

    Ops are keyed by (id, opcode, latency) -- names, unroll indices and
    origins are bookkeeping that cannot affect scheduling.  Edge order is
    the graph's deterministic iteration order.  Memoised on the DDG's
    structural cache: a sweep keys the same loop against many machines
    and option variants, and only the graph walk is loop-specific.
    """
    cached = ddg._edge_cache.get("fingerprint_sig")
    if cached is not None:
        return cached
    sig = {
        "name": ddg.name,
        "trip": ddg.trip_count,
        "ops": [(op.op_id, op.opcode.mnemonic, op.latency)
                for op in ddg.operations],
        "edges": [(e.src, e.dst, e.key, e.latency, e.distance, e.kind.value)
                  for e in ddg.edges()],
    }
    ddg._edge_cache["fingerprint_sig"] = sig
    return sig


def _single_machine_signature(machine: "Machine") -> dict:
    return {
        "kind": "single",
        "name": machine.name,
        "rf": machine.rf_kind.value,
        "fus": {t.value: n for t, n in sorted(
            machine.fus.counts.items(), key=lambda kv: kv[0].value)},
        "latencies": {op.mnemonic: lat for op, lat in sorted(
            machine.latencies.overrides.items(),
            key=lambda kv: kv[0].mnemonic)},
        "budget": (machine.queue_budget.private,
                   machine.queue_budget.ring_out_cw,
                   machine.queue_budget.ring_out_ccw,
                   machine.queue_budget.positions),
    }


def machine_signature(machine: "Machine | ClusteredMachine") -> dict:
    """Signature of a single-cluster or ring-clustered machine."""
    from repro.machine.cluster import ClusteredMachine

    if isinstance(machine, ClusteredMachine):
        return {
            "kind": "clustered",
            "name": machine.name,
            "n_clusters": machine.n_clusters,
            "allow_moves": machine.allow_moves,
            "xlat": machine.inter_cluster_latency,
            "cluster": _single_machine_signature(machine.cluster),
        }
    return _single_machine_signature(machine)


def job_key(ddg: "Ddg", machine: "Machine | ClusteredMachine",
            options_signature: dict) -> str:
    """SHA-256 content hash identifying one compile job.

    The document is composed textually from per-part canonical JSON --
    identical bytes to ``canonical_json({"v": ..., "ddg": ..., ...})``
    ("ddg" < "machine" < "options" < "v" is already sorted order) -- so
    the DDG fragment, by far the largest, can be serialised once per
    graph and memoised alongside :func:`ddg_signature`.
    """
    ddg_json = ddg._edge_cache.get("fingerprint_json")
    if ddg_json is None:
        ddg_json = canonical_json(ddg_signature(ddg))
        ddg._edge_cache["fingerprint_json"] = ddg_json
    doc = '{"ddg":%s,"machine":%s,"options":%s,"v":%d}' % (
        ddg_json, _machine_json(machine),
        canonical_json(options_signature), SCHEMA_VERSION)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


#: Identity-keyed machine-signature JSON memo.  Machines are immutable
#: (frozen dataclasses) but hold dict-valued parts, so they cannot key a
#: hash-based cache; a sweep reuses a handful of machine objects across
#: thousands of jobs, so identity is the right key.  The held reference
#: keeps the id from being recycled; the size cap bounds long-lived
#: processes (the sweep service) that build machines ad hoc.
_MACHINE_JSON: dict[int, tuple[object, str]] = {}


def _machine_json(machine: "Machine | ClusteredMachine") -> str:
    entry = _MACHINE_JSON.get(id(machine))
    if entry is not None:
        return entry[1]
    if len(_MACHINE_JSON) > 512:
        _MACHINE_JSON.clear()
    js = canonical_json(machine_signature(machine))
    _MACHINE_JSON[id(machine)] = (machine, js)
    return js

"""Content-addressed on-disk result caches: legacy JSONL and sharded.

Two backends share one duck-typed API (``get``/``peek``/``put``/
``put_many``/``clear``/``stats``/``gc``):

* :class:`ResultCache` -- the historical single-``results.jsonl`` store.
  Append-only, forgiving loader, fine for one writer.  Kept for existing
  cache directories and as the simplest possible backend.
* :class:`ShardedResultCache` -- the scaling backend behind the sweep
  service.  Records are spread over ``2^k`` shard files keyed by the
  leading hex digits of the job fingerprint, every append/compaction
  holds a per-shard file lock (``flock`` where available), so the
  daemon and any number of concurrent CLI runs can write the same cache
  without torn lines or lost shards.  A size budget (``max_bytes``)
  triggers per-shard compaction and oldest-first ("LRU-ish": insertion
  order approximates recency in an append-only log) eviction, and the
  cache keeps hit/miss/store/eviction plus cumulative latency counters
  for ``/metrics`` and BENCH telemetry.

:func:`open_cache` picks the backend by looking at the directory: an
existing legacy file keeps the legacy layout (until ``migrate()``),
anything else gets shards.  Both loaders stay deliberately forgiving:
corrupt lines (truncated writes, hand edits, schema drift) are counted
and skipped, never fatal -- a bad cache entry costs one recompile, not a
crashed sweep.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import time
import zlib
from typing import Iterable, Optional

from repro.faults import fault_point, torn_payload

from .fingerprint import SCHEMA_VERSION
from .job import JobResult

#: Environment override for the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: File name of the legacy JSONL store inside the cache directory.
CACHE_FILE = "results.jsonl"

#: Subdirectory holding the sharded store.
SHARD_DIR = "shards"

#: Default shard count (2^4; must be a power of two <= 256).
N_SHARDS = 16

try:  # pragma: no cover - always available on the POSIX CI hosts
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-vliw``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-vliw"


# ---------------------------------------------------------------------------
# shared line-level helpers
# ---------------------------------------------------------------------------

def _parse_lines(raw: str, entries: dict) -> int:
    """Fold JSONL *raw* into *entries* (last wins); returns corrupt count."""
    corrupt = 0
    for line in raw.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if record.get("v") != SCHEMA_VERSION:
                raise ValueError("schema version mismatch")
            key = record["key"]
            # validate eagerly so a malformed outcome is counted as
            # corrupt now rather than crashing a later get()
            JobResult.from_record(record)
        except (ValueError, KeyError, TypeError):
            corrupt += 1
            continue
        entries[key] = record
    return corrupt


def _ends_with_newline(path: pathlib.Path) -> bool:
    """Whether *path* is empty/absent or ends on a record boundary."""
    try:
        with path.open("rb") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell() == 0:
                return True
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) == b"\n"
    except (FileNotFoundError, OSError):
        return True


class _FileLock:
    """Advisory per-file lock (``flock`` on a ``.lock`` sibling).

    Guards shard appends and compactions across *processes*; within a
    process the cache's own mutex serialises callers.  Degrades to a
    no-op where ``fcntl`` is unavailable -- exactly the platforms where
    the historical cache already ran unlocked.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path.with_name(path.name + ".lock")
        self._fh = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self._fh = self.path.open("a")
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._fh is not None:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None


# ---------------------------------------------------------------------------
# legacy single-file backend
# ---------------------------------------------------------------------------

class ResultCache:
    """JSONL-backed content-addressed store of :class:`JobResult` records.

    The legacy single-file layout: fine for one writer (concurrent runs
    at worst duplicate a line; last one wins on load), the scaling
    bottleneck the sharded backend replaces.  ``repro-vliw cache gc``
    and ``stats`` work on this layout too, treating it as one shard.
    """

    def __init__(self, directory: "pathlib.Path | str | None" = None) -> None:
        self.directory = pathlib.Path(directory) if directory \
            else default_cache_dir()
        self.path = self.directory / CACHE_FILE
        self._entries: Optional[dict[str, dict]] = None
        self._unwritable = False
        self.n_corrupt = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.compactions = 0

    # ------------------------------------------------------------- loading

    def _load(self) -> dict[str, dict]:
        if self._entries is not None:
            return self._entries
        entries: dict[str, dict] = {}
        try:
            raw = self.path.read_text()
        except (FileNotFoundError, OSError):
            raw = ""
        self.n_corrupt = _parse_lines(raw, entries)
        self._entries = entries
        return entries

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def iter_records(self) -> list[dict]:
        """Snapshot of the raw cached records (cost estimation, audits).

        A list copy, so callers iterate without coordinating with
        writers; the records themselves are shared -- read-only.
        """
        return list(self._load().values())

    # ------------------------------------------------------------ get/put

    def peek(self, key: str) -> Optional[JobResult]:
        """Like :meth:`get` but without touching the hit/miss counters
        (status probes must not skew the telemetry)."""
        record = self._load().get(key)
        return None if record is None else \
            JobResult.from_record(record, cached=True)

    def get(self, key: str) -> Optional[JobResult]:
        """Cached result for *key*, or None (and count the hit/miss).

        May raise on I/O failure (or an injected ``cache.get`` fault);
        callers treat a failed lookup as a miss.
        """
        fault_point("cache.get", key)
        record = self._load().get(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return JobResult.from_record(record, cached=True)

    def put(self, result: JobResult) -> None:
        self.put_many([result])

    def put_many(self, results: Iterable[JobResult]) -> None:
        """Append results to the store (one buffered write per batch).

        The whole batch is serialised first and written with a *single*
        ``write`` call -- ``run_jobs`` calls this once per sweep, so a
        1000-job sweep costs one open/write/close, not 1000.  If the file
        ends mid-line (a previous writer crashed mid-append), a leading
        newline is emitted first so the fresh records never merge into the
        torn tail; the loader then skips exactly the one corrupt line.

        An unwritable cache location must never lose a finished sweep:
        the first OSError downgrades this cache to in-memory-only (with
        one warning), and the results are still indexed for get().
        """
        results = list(results)
        if not results:
            return
        # injected before any state changes: a raising put models I/O
        # failure -- the batch is neither indexed nor written, and the
        # caller's sweep still completes (results just recompile later)
        fault_point("cache.put", results[0].key)
        entries = self._load()
        lines = []
        for result in results:
            record = result.to_record()
            record["v"] = SCHEMA_VERSION
            lines.append(json.dumps(record, sort_keys=True))
            entries[result.key] = record
            self.stores += 1
        if self._unwritable:
            return
        payload = "\n".join(lines) + "\n"
        payload = torn_payload("cache.put", results[0].key, payload)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            if not _ends_with_newline(self.path):
                payload = "\n" + payload
            with self.path.open("a") as fh:
                fh.write(payload)
        except OSError as exc:
            self._unwritable = True
            print(f"repro-vliw: result cache {self.path} is not "
                  f"writable ({exc}); caching in memory only",
                  file=sys.stderr)

    def clear(self) -> None:
        """Drop the on-disk store and the in-memory index."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        self._entries = None
        self.n_corrupt = 0

    # ------------------------------------------------------------- gc

    def total_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except (FileNotFoundError, OSError):
            return 0

    def gc(self, max_bytes: Optional[int] = None) -> dict:
        """Compact the store (dedupe, drop corrupt lines) and, with a
        *max_bytes* budget, evict oldest records until it fits."""
        before = self.total_bytes()
        self._entries = None
        entries = self._load()
        lines = [json.dumps(r, sort_keys=True) for r in entries.values()]
        evicted = 0
        if max_bytes is not None:
            while lines and sum(len(ln) + 1 for ln in lines) > max_bytes:
                lines.pop(0)
                evicted += 1
        kept = {}
        _parse_lines("\n".join(lines), kept)
        try:
            if lines:
                self.directory.mkdir(parents=True, exist_ok=True)
                tmp = self.path.with_suffix(".jsonl.tmp")
                tmp.write_text("\n".join(lines) + "\n")
                tmp.replace(self.path)
            else:
                self.clear()
        except OSError:
            pass
        self._entries = kept
        self.n_corrupt = 0
        self.evictions += evicted
        self.compactions += 1
        return {"before_bytes": before, "after_bytes": self.total_bytes(),
                "evicted": evicted, "compacted_shards": 1}

    def stats(self) -> dict:
        """Counters for progress reporting, /metrics and benchmarks."""
        return {"backend": "legacy", "entries": len(self),
                "bytes": self.total_bytes(),
                "hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.n_corrupt,
                "evictions": self.evictions,
                "compactions": self.compactions}


# ---------------------------------------------------------------------------
# sharded backend
# ---------------------------------------------------------------------------

class ShardedResultCache:
    """Sharded, concurrently-writable content-addressed result store.

    ``directory/shards/shard-XX.jsonl`` for ``XX`` in ``00..N-1`` (hex),
    where a record's shard is the leading hex digits of its fingerprint
    key -- SHA-256 output, so shards stay uniformly occupied.  Appends
    and compactions hold the shard's file lock, making daemon + CLI
    concurrent writers safe; a legacy ``results.jsonl`` in the same
    directory is read through transparently (shard records win) until
    :meth:`migrate` folds it in.

    With *max_bytes* set, any shard growing past ``max_bytes/n_shards``
    is compacted in place and its oldest records evicted -- the same
    policy :meth:`gc` applies on demand.  All mutating entry points are
    serialised by an internal mutex, so the service's event-loop thread
    can read while the batch-executor thread stores.
    """

    def __init__(self, directory: "pathlib.Path | str | None" = None, *,
                 n_shards: int = N_SHARDS,
                 max_bytes: Optional[int] = None) -> None:
        if n_shards < 1 or n_shards > 256 or n_shards & (n_shards - 1):
            raise ValueError(f"n_shards must be a power of two in "
                             f"[1, 256], not {n_shards}")
        self.directory = pathlib.Path(directory) if directory \
            else default_cache_dir()
        self.shard_dir = self.directory / SHARD_DIR
        #: displayed by ``repro-vliw cache``; the store's on-disk home
        self.path = self.shard_dir
        self.legacy_path = self.directory / CACHE_FILE
        self.n_shards = n_shards
        self.max_bytes = max_bytes
        self._entries: Optional[dict[str, dict]] = None
        self._shard_of_key: dict[str, int] = {}
        self._in_shards: set[str] = set()
        self._unwritable = False
        self._mutex = threading.RLock()
        self.n_corrupt = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.compactions = 0
        #: cumulative lookup/store wall time, for /metrics latency rates
        self.get_s = 0.0
        self.put_s = 0.0

    # ------------------------------------------------------------- layout

    def _shard(self, key: str) -> int:
        """Shard index from the fingerprint prefix (hex keys), falling
        back to a CRC for foreign keys so nothing is unroutable."""
        try:
            return int(key[:2], 16) % self.n_shards
        except (ValueError, IndexError):
            return zlib.crc32(key.encode("utf-8")) % self.n_shards

    def _shard_path(self, shard: int) -> pathlib.Path:
        return self.shard_dir / f"shard-{shard:02x}.jsonl"

    def _shard_lock(self, shard: int) -> _FileLock:
        return _FileLock(self._shard_path(shard))

    # ------------------------------------------------------------- loading

    def _load(self) -> dict[str, dict]:
        with self._mutex:
            if self._entries is not None:
                return self._entries
            entries: dict[str, dict] = {}
            corrupt = 0
            try:
                corrupt += _parse_lines(self.legacy_path.read_text(),
                                        entries)
            except (FileNotFoundError, OSError):
                pass
            in_shards: dict[str, dict] = {}
            for shard in range(self.n_shards):
                try:
                    raw = self._shard_path(shard).read_text()
                except (FileNotFoundError, OSError):
                    continue
                corrupt += _parse_lines(raw, in_shards)
            entries.update(in_shards)
            self._entries = entries
            self._in_shards = set(in_shards)
            self._shard_of_key = {k: self._shard(k) for k in entries}
            self.n_corrupt = corrupt
            return entries

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def iter_records(self) -> list[dict]:
        """Snapshot of the raw cached records (cost estimation, audits).

        A list copy taken under the mutex, so callers iterate without
        racing writers; the records themselves are shared -- read-only.
        """
        with self._mutex:
            return list(self._load().values())

    # ------------------------------------------------------------ get/put

    def peek(self, key: str) -> Optional[JobResult]:
        """Like :meth:`get` but without touching the hit/miss counters
        (status probes must not skew the telemetry)."""
        with self._mutex:
            record = self._load().get(key)
        return None if record is None else \
            JobResult.from_record(record, cached=True)

    def get(self, key: str) -> Optional[JobResult]:
        """Cached result for *key*, or None (and count the hit/miss).

        May raise on I/O failure (or an injected ``cache.get`` fault);
        callers treat a failed lookup as a miss.
        """
        fault_point("cache.get", key)
        t0 = time.perf_counter()
        with self._mutex:
            record = self._load().get(key)
            if record is None:
                self.misses += 1
                self.get_s += time.perf_counter() - t0
                return None
            self.hits += 1
            self.get_s += time.perf_counter() - t0
        return JobResult.from_record(record, cached=True)

    def put(self, result: JobResult) -> None:
        self.put_many([result])

    def put_many(self, results: Iterable[JobResult]) -> None:
        """Store results: one locked, buffered append per touched shard.

        Each shard's batch is serialised first and written with a single
        ``write`` while the shard lock is held, so concurrent writers
        (daemon + CLI sweeps) interleave whole batches, never bytes.  A
        torn tail left by a crashed writer is isolated with a leading
        newline, exactly like the legacy store.  An unwritable location
        degrades to in-memory-only after one warning.
        """
        results = list(results)
        if not results:
            return
        # injected before any state changes: a raising put models I/O
        # failure -- the batch is neither indexed nor written, and the
        # caller's sweep still completes (results just recompile later)
        fault_point("cache.put", results[0].key)
        t0 = time.perf_counter()
        with self._mutex:
            entries = self._load()
            by_shard: dict[int, list[str]] = {}
            shard_token: dict[int, str] = {}
            for result in results:
                record = result.to_record()
                record["v"] = SCHEMA_VERSION
                shard = self._shard(result.key)
                by_shard.setdefault(shard, []).append(
                    json.dumps(record, sort_keys=True))
                shard_token.setdefault(shard, result.key)
                entries[result.key] = record
                self._shard_of_key[result.key] = shard
                self._in_shards.add(result.key)
                self.stores += 1
            if not self._unwritable:
                try:
                    self.shard_dir.mkdir(parents=True, exist_ok=True)
                    for shard, lines in sorted(by_shard.items()):
                        self._append_shard(shard, lines,
                                           fault_token=shard_token[shard])
                        if self.max_bytes is not None:
                            self._maybe_evict(shard)
                except OSError as exc:
                    self._unwritable = True
                    print(f"repro-vliw: result cache {self.shard_dir} is "
                          f"not writable ({exc}); caching in memory only",
                          file=sys.stderr)
            self.put_s += time.perf_counter() - t0

    def _append_shard(self, shard: int, lines: list[str], *,
                      fault_token: Optional[str] = None) -> None:
        path = self._shard_path(shard)
        payload = "\n".join(lines) + "\n"
        if fault_token is not None:
            # torn-write injection is keyed by the first stored key, not
            # the payload (wall_s differs run to run): the same seed
            # tears the same shards regardless of timing
            payload = torn_payload("cache.put", fault_token, payload)
        with self._shard_lock(shard):
            if not _ends_with_newline(path):
                payload = "\n" + payload
            with path.open("a") as fh:
                fh.write(payload)

    # ----------------------------------------------------- gc / eviction

    def _shard_budget(self) -> Optional[int]:
        return None if self.max_bytes is None \
            else max(1, self.max_bytes // self.n_shards)

    def _maybe_evict(self, shard: int) -> None:
        budget = self._shard_budget()
        if budget is None:
            return
        try:
            if self._shard_path(shard).stat().st_size > budget:
                self._compact_shard(shard, budget)
        except (FileNotFoundError, OSError):
            pass

    def _compact_shard(self, shard: int,
                       budget: Optional[int]) -> tuple[int, int]:
        """Rewrite one shard deduped (and evicted down to *budget*);
        returns ``(evicted, removed_keys_still_cached_in_memory)``.

        The shard file is re-read under its lock so records appended by
        other processes since our load survive the rewrite.
        """
        path = self._shard_path(shard)
        evicted = 0
        with self._shard_lock(shard):
            fresh: dict[str, dict] = {}
            try:
                _parse_lines(path.read_text(), fresh)
            except (FileNotFoundError, OSError):
                return 0, 0
            lines = {k: json.dumps(r, sort_keys=True)
                     for k, r in fresh.items()}
            if budget is not None:
                # oldest-first eviction: insertion order approximates
                # recency in an append-only log
                for key in list(lines):
                    if sum(len(ln) + 1 for ln in lines.values()) <= budget:
                        break
                    del lines[key]
                    del fresh[key]
                    evicted += 1
            try:
                if lines:
                    tmp = path.with_suffix(".jsonl.tmp")
                    tmp.write_text("\n".join(lines.values()) + "\n")
                    tmp.replace(path)
                else:
                    path.unlink(missing_ok=True)
            except OSError:
                return 0, 0
        # refresh the in-memory view of this shard
        entries = self._load()
        dropped = [k for k, s in self._shard_of_key.items()
                   if s == shard and k not in fresh]
        for key in dropped:
            entries.pop(key, None)
            self._shard_of_key.pop(key, None)
            self._in_shards.discard(key)
        for key, record in fresh.items():
            entries[key] = record
            self._shard_of_key[key] = shard
            self._in_shards.add(key)
        self.evictions += evicted
        self.compactions += 1
        return evicted, len(dropped)

    def gc(self, max_bytes: Optional[int] = None) -> dict:
        """Compact every shard; with a byte budget, evict down to it.

        *max_bytes* defaults to the cache's configured budget.  The
        legacy file, if still present, is migrated first so its records
        compete under the same policy.
        """
        with self._mutex:
            if max_bytes is None:
                max_bytes = self.max_bytes
            before = self.total_bytes()
            if self.legacy_path.exists():
                self.migrate()
            budget = None if max_bytes is None \
                else max(1, max_bytes // self.n_shards)
            evicted = compacted = 0
            for shard in range(self.n_shards):
                if self._shard_path(shard).exists():
                    n, _ = self._compact_shard(shard, budget)
                    evicted += n
                    compacted += 1
            return {"before_bytes": before,
                    "after_bytes": self.total_bytes(),
                    "evicted": evicted, "compacted_shards": compacted}

    # ----------------------------------------------------------- migrate

    def migrate(self) -> int:
        """Fold a legacy ``results.jsonl`` into the shards and remove it.

        Shard records win over legacy ones (they are newer by
        construction: the legacy file stopped growing when the sharded
        layout took over).  Returns the number of records moved.
        """
        with self._mutex:
            legacy: dict[str, dict] = {}
            try:
                _parse_lines(self.legacy_path.read_text(), legacy)
            except (FileNotFoundError, OSError):
                return 0
            entries = self._load()
            by_shard: dict[int, list[str]] = {}
            moved = 0
            for key, record in legacy.items():
                shard = self._shard(key)
                if key in self._in_shards:
                    # already shard-resident (possibly newer); skip
                    continue
                by_shard.setdefault(shard, []).append(
                    json.dumps(record, sort_keys=True))
                entries.setdefault(key, record)
                self._shard_of_key[key] = shard
                self._in_shards.add(key)
                moved += 1
            try:
                self.shard_dir.mkdir(parents=True, exist_ok=True)
                for shard, lines in sorted(by_shard.items()):
                    self._append_shard(shard, lines)
                self.legacy_path.unlink(missing_ok=True)
            except OSError as exc:
                print(f"repro-vliw: cache migration to {self.shard_dir} "
                      f"failed ({exc})", file=sys.stderr)
            return moved

    # ------------------------------------------------------------- misc

    def clear(self) -> None:
        """Drop the on-disk store (both layouts) and the in-memory index."""
        with self._mutex:
            for shard in range(self.n_shards):
                path = self._shard_path(shard)
                path.unlink(missing_ok=True)
                _FileLock(path).path.unlink(missing_ok=True)
            self.legacy_path.unlink(missing_ok=True)
            self._entries = None
            self._shard_of_key = {}
            self._in_shards = set()
            self.n_corrupt = 0

    def total_bytes(self) -> int:
        total = 0
        for path in [self.legacy_path] + [self._shard_path(s)
                                          for s in range(self.n_shards)]:
            try:
                total += path.stat().st_size
            except (FileNotFoundError, OSError):
                continue
        return total

    def shard_occupancy(self) -> list[int]:
        """Entry count per shard (uniform for healthy SHA-256 keys)."""
        with self._mutex:
            self._load()
            counts = [0] * self.n_shards
            for shard in self._shard_of_key.values():
                counts[shard] += 1
            return counts

    def stats(self) -> dict:
        """Counters for progress reporting, /metrics and benchmarks."""
        with self._mutex:
            return {"backend": "sharded", "entries": len(self),
                    "bytes": self.total_bytes(),
                    "n_shards": self.n_shards,
                    "shard_occupancy": self.shard_occupancy(),
                    "max_bytes": self.max_bytes,
                    "hits": self.hits, "misses": self.misses,
                    "stores": self.stores, "corrupt": self.n_corrupt,
                    "evictions": self.evictions,
                    "compactions": self.compactions,
                    "get_s": round(self.get_s, 6),
                    "put_s": round(self.put_s, 6)}


def open_cache(directory: "pathlib.Path | str | None" = None, *,
               backend: Optional[str] = None,
               max_bytes: Optional[int] = None,
               ) -> "ResultCache | ShardedResultCache":
    """Open the result cache in *directory*, picking the right backend.

    ``backend`` forces ``"legacy"`` or ``"sharded"``; by default an
    existing legacy store (and no shards) keeps the legacy layout so old
    cache directories stay valid, and everything else -- including brand
    new directories -- gets the sharded backend.
    """
    d = pathlib.Path(directory) if directory else default_cache_dir()
    if backend is None:
        if (d / SHARD_DIR).is_dir():
            backend = "sharded"
        elif (d / CACHE_FILE).exists():
            backend = "legacy"
        else:
            backend = "sharded"
    if backend == "sharded":
        return ShardedResultCache(d, max_bytes=max_bytes)
    if backend == "legacy":
        return ResultCache(d)
    raise ValueError(f"unknown cache backend {backend!r}; "
                     f"use 'legacy' or 'sharded'")

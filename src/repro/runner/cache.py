"""Content-addressed on-disk result cache.

Results are stored as one JSON line per job under the cache directory
(``$REPRO_CACHE_DIR``, or ``~/.cache/repro-vliw`` by default), keyed by
the job's content hash.  The format is append-only: a repeated sweep
appends only the jobs it actually recomputed, and concurrent runs at
worst duplicate a line (last one wins on load).

The loader is deliberately forgiving: corrupt lines (truncated writes,
hand edits, schema drift) are counted and skipped, never fatal -- a bad
cache entry costs one recompile, not a crashed sweep.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
from typing import Iterable, Optional

from .fingerprint import SCHEMA_VERSION
from .job import JobResult

#: Environment override for the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: File name of the JSONL store inside the cache directory.
CACHE_FILE = "results.jsonl"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-vliw``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-vliw"


class ResultCache:
    """JSONL-backed content-addressed store of :class:`JobResult` records."""

    def __init__(self, directory: "pathlib.Path | str | None" = None) -> None:
        self.directory = pathlib.Path(directory) if directory \
            else default_cache_dir()
        self.path = self.directory / CACHE_FILE
        self._entries: Optional[dict[str, dict]] = None
        self._unwritable = False
        self.n_corrupt = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------- loading

    def _load(self) -> dict[str, dict]:
        if self._entries is not None:
            return self._entries
        entries: dict[str, dict] = {}
        self.n_corrupt = 0
        try:
            raw = self.path.read_text()
        except (FileNotFoundError, OSError):
            raw = ""
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record.get("v") != SCHEMA_VERSION:
                    raise ValueError("schema version mismatch")
                key = record["key"]
                # validate eagerly so a malformed outcome is counted as
                # corrupt now rather than crashing a later get()
                JobResult.from_record(record)
            except (ValueError, KeyError, TypeError):
                self.n_corrupt += 1
                continue
            entries[key] = record
        self._entries = entries
        return entries

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    # ------------------------------------------------------------ get/put

    def get(self, key: str) -> Optional[JobResult]:
        """Cached result for *key*, or None (and count the hit/miss)."""
        record = self._load().get(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return JobResult.from_record(record, cached=True)

    def put(self, result: JobResult) -> None:
        self.put_many([result])

    def put_many(self, results: Iterable[JobResult]) -> None:
        """Append results to the store (one buffered write per batch).

        The whole batch is serialised first and written with a *single*
        ``write`` call -- ``run_jobs`` calls this once per sweep, so a
        1000-job sweep costs one open/write/close, not 1000.  If the file
        ends mid-line (a previous writer crashed mid-append), a leading
        newline is emitted first so the fresh records never merge into the
        torn tail; the loader then skips exactly the one corrupt line.

        An unwritable cache location must never lose a finished sweep:
        the first OSError downgrades this cache to in-memory-only (with
        one warning), and the results are still indexed for get().
        """
        results = list(results)
        if not results:
            return
        entries = self._load()
        lines = []
        for result in results:
            record = result.to_record()
            record["v"] = SCHEMA_VERSION
            lines.append(json.dumps(record, sort_keys=True))
            entries[result.key] = record
            self.stores += 1
        if self._unwritable:
            return
        payload = "\n".join(lines) + "\n"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            if not self._ends_with_newline():
                payload = "\n" + payload
            with self.path.open("a") as fh:
                fh.write(payload)
        except OSError as exc:
            self._unwritable = True
            print(f"repro-vliw: result cache {self.path} is not "
                  f"writable ({exc}); caching in memory only",
                  file=sys.stderr)

    def _ends_with_newline(self) -> bool:
        """Whether the store is empty or ends on a record boundary."""
        try:
            with self.path.open("rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return True
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) == b"\n"
        except (FileNotFoundError, OSError):
            return True

    def clear(self) -> None:
        """Drop the on-disk store and the in-memory index."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        self._entries = None
        self.n_corrupt = 0

    def stats(self) -> dict:
        """Counters for progress reporting and benchmarks."""
        return {"entries": len(self), "hits": self.hits,
                "misses": self.misses, "stores": self.stores,
                "corrupt": self.n_corrupt}

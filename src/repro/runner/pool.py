"""Persistent sweep-worker pools with preloaded payloads.

The historical executor spun up a fresh ``multiprocessing.Pool`` for
every ``run_jobs`` call and shipped every job whole -- the loop DDG and
the machine description were re-pickled per job even though a sweep grid
references the same few objects hundreds of times.

A :class:`PoolSession` keeps one pool of workers alive across
``run_jobs`` calls (keyed by worker count) and moves the bulky payload
out of the per-task path:

* **Dedup tables + pool initializer** -- the session maintains grow-only
  tables of the distinct loop/machine objects it has seen; workers
  receive the tables once, through the pool initializer (free under the
  ``fork`` start method -- the child inherits them), and each task is
  just ``(seq, ddg_index, machine_index, options, key)``.  New table
  entries restart the pool (counted, and rare: drivers reuse the same
  loop and machine objects across their calls).
* **Cost-balanced chunked dispatch** -- tasks are dispatched
  largest-first over ``imap_unordered`` with a chunk size derived from
  the job count, so one expensive loop cannot serialise the tail of the
  sweep.  Cost estimates come from prior cache records (``wall_s`` by
  ``(loop, machine)``), falling back to an op-count heuristic for jobs
  never seen before.  Results are re-ordered by sequence number, so the
  output stays byte-identical to the serial walk.
* **Arena reuse inside each worker** -- workers are ordinary processes
  running :func:`~repro.runner.pipeline.execute_job`, so each one's
  process-global :func:`~repro.sched.arena.global_arena` (and front-end
  memo) persists across every job it executes.

Any failure to fan out degrades to the caller's serial path, exactly as
before.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import time
from typing import Callable, Optional, Sequence

log = logging.getLogger("repro.runner.pool")

from repro import faults as _faults

from .fingerprint import canonical_json, machine_signature
from .job import CompileJob, JobResult
from .pipeline import execute_job

#: Grow-only table cap; beyond it the session recycles itself so a
#: pathological stream of one-shot loop objects cannot hoard memory.
MAX_TABLE_ENTRIES = 4096

#: Per-job progress watchdog: if no job settles for this long, the pool
#: is declared wedged (hung worker, lost chunk) and respawned.  Generous
#: -- the slowest corpus job compiles in well under a second -- while
#: still bounding a sweep's exposure to a hung worker.
DEFAULT_JOB_DEADLINE_S = 120.0

#: Dispatch rounds per job beyond the first: after this many failed
#: rounds a job is quarantined to the caller's serial path, so one
#: poisonous task cannot respawn the pool forever.  The serial run *is*
#: the final retry: with the default of 1 a job executes at most twice.
DEFAULT_MAX_RETRIES = 1

#: Backoff before re-dispatching survivors of a failed round.
RETRY_BACKOFF_S = 0.05

# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Per-worker payload tables, set once by the pool initializer.
_WORKER_DDGS: Sequence = ()
_WORKER_MACHINES: Sequence = ()


def _init_worker(ddgs: Sequence, machines: Sequence) -> None:
    global _WORKER_DDGS, _WORKER_MACHINES
    _WORKER_DDGS = ddgs
    _WORKER_MACHINES = machines


def _run_task(task: tuple) -> tuple[int, JobResult]:
    seq, ddg_i, machine_i, options, key = task
    # worker entry is an injection seam (crash / hang / slow) and the
    # attempt ledger's recording point; execute_job itself contains any
    # exception into an error-kind result, so a task can only fail by
    # taking the whole worker process down with it
    _faults.on_job_execute(key)
    _faults.fault_point("pool.worker", key)
    job = CompileJob(ddg=_WORKER_DDGS[ddg_i],
                     machine=_WORKER_MACHINES[machine_i],
                     options=options, _key=key)
    return seq, execute_job(job)


def _run_chunk(tasks: list) -> list:
    """Execute one pre-built chunk of tasks in a worker.

    Chunking is explicit (rather than ``imap_unordered``'s
    ``chunksize``) because the chunked iterator the pool returns is a
    plain generator with no timeout support -- the supervision watchdog
    needs ``IMapUnorderedIterator.next(timeout)``, which only the
    one-item-per-task form provides.  A crashed worker loses exactly
    its in-flight chunk; everything else keeps streaming.
    """
    return [_run_task(task) for task in tasks]


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------

class PoolSession:
    """One persistent worker pool plus its payload tables."""

    def __init__(self, n_workers: int,
                 context_factory: Callable) -> None:
        self.n_workers = n_workers
        self._context_factory = context_factory
        self._pool = None
        self._ddgs: list = []
        self._machines: list = []
        self._ddg_idx: dict[int, int] = {}       # id(ddg) -> table index
        self._machine_idx: dict[str, int] = {}   # content sig -> index
        self.spawns = 0        # pools (re)created
        self.reuses = 0        # run_jobs calls served by a live pool
        self.respawns = 0      # partial recoveries (workers replaced)
        self.retries = 0       # jobs re-dispatched after a failed round
        self.quarantines = 0   # jobs handed back for serial execution

    # ------------------------------------------------------------- tables

    def _index_of(self, obj: object, idx: dict, table: list,
                  key: object) -> tuple[int, bool]:
        """Table index of *obj* under *key*; True when newly added.

        Loops are keyed by identity (the table's strong reference keeps
        the id stable); machines by content signature -- drivers rebuild
        behaviourally identical machine objects every call, and the
        signature is exactly the machine part of the cache key, so
        substituting the first-seen equivalent cannot change results.
        """
        i = idx.get(key)
        if i is not None:
            return i, False
        table.append(obj)
        idx[key] = len(table) - 1
        return len(table) - 1, True

    def _ensure_pool(self, grew: bool) -> object:
        """A live pool whose workers hold the current tables."""
        if self._pool is not None and not grew:
            self.reuses += 1
            return self._pool
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        ctx = self._context_factory()
        self._pool = ctx.Pool(
            processes=self.n_workers,
            initializer=_init_worker,
            initargs=(tuple(self._ddgs), tuple(self._machines)))
        self.spawns += 1
        return self._pool

    # ------------------------------------------------------------ running

    def run(self, jobs: Sequence[CompileJob],
            on_result: Callable[[int, JobResult], None],
            cost_of: Callable[[CompileJob], float],
            chunk_size: Optional[int] = None, *,
            deadline_s: Optional[float] = DEFAULT_JOB_DEADLINE_S,
            max_retries: int = DEFAULT_MAX_RETRIES) -> list[int]:
        """Execute *jobs*, reporting ``(position, result)`` as each
        settles (any completion order), under per-job supervision.

        A wall-clock watchdog (*deadline_s* without any job settling)
        or a broken pool fails the *round*, not the sweep: the workers
        are respawned with the payload tables kept, the undelivered
        jobs are re-dispatched after a short backoff, and jobs that
        survive *max_retries* failed rounds are **quarantined** --
        returned (sorted) for the caller to finish on its serial path,
        which counts as their final retry.  Exceptions from *on_result*
        itself still propagate: the callback belongs to the caller, and
        a settled-then-redelivered job would break exactly-once
        accounting.
        """
        if len(self._ddgs) + len(self._machines) > MAX_TABLE_ENTRIES:
            # recycle before indexing: the tables restart from only the
            # objects of this call, and the pool respawns with them
            self.close()
        grew = False
        pending: dict[int, tuple] = {}
        for seq, job in enumerate(jobs):
            # loops are keyed by identity AND structural version: a DDG
            # mutated since the workers forked must not be served from
            # their stale snapshot (the fresh entry restarts the pool)
            di, new_d = self._index_of(job.ddg, self._ddg_idx, self._ddgs,
                                       (id(job.ddg), job.ddg._version))
            mi, new_m = self._index_of(
                job.machine, self._machine_idx, self._machines,
                canonical_json(machine_signature(job.machine)))
            grew = grew or new_d or new_m
            pending[seq] = (seq, di, mi, job.options, job.key)
        attempts: dict[int, int] = {}
        quarantined: list[int] = []
        failed_rounds = 0
        while pending:
            pool = self._ensure_pool(grew)
            grew = False
            # cost-balanced chunked dispatch: rank tasks costliest-first,
            # then *stripe* them across the chunks -- contiguous chunking
            # after the sort would hand all the expensive jobs to one
            # worker and grow the tail instead of shrinking it
            tasks = sorted(pending.values(),
                           key=lambda t: -cost_of(jobs[t[0]]))
            chunk = chunk_size or max(
                1, min(32, len(tasks) // (self.n_workers * 4)))
            n_chunks = -(-len(tasks) // chunk)
            chunks = [tasks[i::n_chunks] for i in range(n_chunks)]
            it = pool.imap_unordered(_run_chunk, chunks)
            failure: Optional[BaseException] = None
            while True:
                try:
                    if deadline_s is None:
                        settled = next(it)
                    else:
                        settled = it.next(timeout=deadline_s)
                except StopIteration:
                    break
                except multiprocessing.TimeoutError:
                    failure = TimeoutError(
                        f"no chunk settled within the {deadline_s:g}s "
                        f"watchdog; a worker is hung or its chunk was "
                        f"lost to a crash")
                    break
                except Exception as exc:
                    # infra failure surfacing through the iterator (dead
                    # pool, unpicklable result); job-level exceptions
                    # were already contained into error results
                    failure = exc
                    break
                for seq, result in settled:
                    # settle *before* on_result: if the callback raises,
                    # the job must not be eligible for re-dispatch
                    pending.pop(seq, None)
                    on_result(seq, result)
            if failure is None:
                break
            self.respawn(cause=failure)
            failed_rounds += 1
            retry: dict[int, tuple] = {}
            for seq, task in pending.items():
                attempts[seq] = attempts.get(seq, 0) + 1
                # the serial quarantine run counts as the last retry, so
                # a job is dispatched at most 1 + max_retries times total
                if attempts[seq] >= max_retries:
                    quarantined.append(seq)
                else:
                    retry[seq] = task
            self.retries += len(retry)
            pending = retry
            if pending:
                time.sleep(min(1.0, RETRY_BACKOFF_S * 2 ** (failed_rounds - 1)))
        if quarantined:
            quarantined.sort()
            self.quarantines += len(quarantined)
            log.warning(
                "quarantining %d job(s) to the serial path after %d "
                "failed dispatch round(s)", len(quarantined), failed_rounds)
        return quarantined

    def respawn(self, cause: Optional[BaseException] = None) -> None:
        """Replace the workers, keeping the payload tables.

        Partial recovery: terminating only the pool means the next
        round re-forks workers that still receive the already-built
        dedup tables through the initializer -- unlike
        :func:`discard_session`, nothing the session learned is lost.
        """
        if cause is not None:
            log.warning(
                "pool of %d workers failed a dispatch round (%s: %s); "
                "respawning workers, payload tables kept",
                self.n_workers, type(cause).__name__, cause)
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        self.respawns += 1

    def close(self, graceful: bool = False) -> None:
        """Tear the pool down.

        ``graceful`` retires the workers instead of killing them: the
        pool stops accepting work, finishes what is queued, and is
        joined -- the daemon's SIGTERM path, where terminating mid-task
        would leak half-written worker state.  The default stays the
        historical hard terminate (tests, error recovery, atexit).
        """
        if self._pool is not None:
            if graceful:
                self._pool.close()
                self._pool.join()
            else:
                self._pool.terminate()
            self._pool = None
        self._ddgs.clear()
        self._machines.clear()
        self._ddg_idx.clear()
        self._machine_idx.clear()

    def counters(self) -> dict:
        return {"spawns": self.spawns, "reuses": self.reuses,
                "respawns": self.respawns, "retries": self.retries,
                "quarantines": self.quarantines,
                "ddgs": len(self._ddgs), "machines": len(self._machines)}


#: Live sessions, keyed by worker count.
_SESSIONS: dict[int, PoolSession] = {}


def get_session(n_workers: int,
                context_factory: Callable) -> PoolSession:
    """The persistent session for *n_workers* (created on first use)."""
    session = _SESSIONS.get(n_workers)
    if session is None:
        session = PoolSession(n_workers, context_factory)
        _SESSIONS[n_workers] = session
    return session


def discard_session(n_workers: int,
                    cause: Optional[BaseException] = None) -> None:
    """Tear one session down (fan-out failed; a fresh one may recover).

    *cause* is the fan-out failure that triggered the discard.  It used
    to be swallowed silently -- a broken pool degraded to the serial
    path with no trace, which made genuine worker crashes (OOM kills,
    unpicklable payload regressions) invisible.  Now it is logged.
    """
    session = _SESSIONS.pop(n_workers, None)
    if cause is not None:
        log.warning(
            "sweep fan-out over %d workers failed (%s: %s); discarding "
            "the pool session and finishing serially",
            n_workers, type(cause).__name__, cause)
    if session is not None:
        session.close()


def close_all_sessions(graceful: bool = False) -> None:
    """Close every pool: hard terminate by default (atexit, and the
    test-suite's isolation), or drain-and-join with ``graceful`` (the
    service's shutdown path)."""
    for n in list(_SESSIONS):
        session = _SESSIONS.pop(n, None)
        if session is not None:
            session.close(graceful=graceful)


def session_counters() -> dict:
    """Live session counters keyed by worker count (for ``/metrics``)."""
    return {str(n): session.counters()
            for n, session in _SESSIONS.items()}


atexit.register(close_all_sessions)


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------

def cost_estimator(cache: object) -> Callable[[CompileJob], float]:
    """Job-cost estimator from prior cache records.

    Averages ``wall_s`` per ``(loop, machine)`` over everything the cache
    has seen (options variants of a loop cost alike, to first order);
    jobs with no history fall back to an op-count heuristic scaled to be
    comparable with real timings.  The aggregation is memoised on the
    cache instance -- drivers call ``run_jobs`` many times against one
    cache, and the hints need not track results stored mid-session.
    """
    hints: dict[tuple[str, str], tuple[float, int]] = {}
    if cache is not None:
        cached_hints = getattr(cache, "_cost_hints", None)
        if cached_hints is not None:
            hints = cached_hints
        else:
            # both cache backends expose iter_records(); the getattr
            # keeps foreign duck-typed caches (tests, adapters) working
            # -- they just run without history-based hints
            iter_records = getattr(cache, "iter_records", None)
            if iter_records is not None:
                for record in iter_records():
                    wall = float(record.get("wall_s") or 0.0)
                    if wall <= 0.0:
                        continue
                    outcome = record.get("outcome") or {}
                    key = (outcome.get("loop"), outcome.get("machine"))
                    total, n = hints.get(key, (0.0, 0))
                    hints[key] = (total + wall, n + 1)
            cache._cost_hints = hints

    def cost(job: CompileJob) -> float:
        name = getattr(job.machine, "name", "")
        hint = hints.get((job.ddg.name, name))
        if hint is not None:
            return hint[0] / hint[1]
        # ~linear in body size; unrolling multiplies the body
        factor = job.options.unroll_factor or (
            4 if job.options.do_unroll else 1)
        return 1e-4 * job.ddg.n_ops * factor

    return cost

"""Sequential reference semantics for token dataflow.

Every dynamic value is identified by the token ``("v", producer_op,
iteration)``; iteration indices below zero denote pre-loop initial values
of loop-carried dependences (live-ins of the software pipeline).  The
reference semantics -- what a sequential execution of the loop would
deliver to every operand -- is directly derivable from the DDG; the VLIW
simulator must reproduce it exactly, which is what makes the token check an
end-to-end proof that scheduling + partitioning + queue allocation are
jointly correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.ir.ddg import Ddg, DepEdge

Token = Hashable


def value_token(op_id: int, iteration: int) -> Token:
    """The token op *op_id* produces in *iteration* (may be negative for
    pre-loop initial values)."""
    return ("v", op_id, iteration)


def expected_operand(edge: DepEdge, iteration: int) -> Token:
    """Token the consumer of *edge* must receive in *iteration*."""
    return value_token(edge.src, iteration - edge.distance)


@dataclass(frozen=True)
class OperandCheck:
    """One operand delivery: consumer instance and the token it must see."""

    consumer: int
    iteration: int
    edge: DepEdge
    token: Token


def enumerate_expected(ddg: Ddg, iterations: int) -> list[OperandCheck]:
    """All operand deliveries of *iterations* iterations, in
    (iteration, consumer, edge) order -- the full reference trace."""
    out: list[OperandCheck] = []
    for k in range(iterations):
        for e in ddg.data_edges():
            out.append(OperandCheck(e.dst, k, e, expected_operand(e, k)))
    return out


def carried_in_tokens(ddg: Ddg) -> list[tuple[DepEdge, Token]]:
    """Initial values that must pre-exist in queues: edge with distance d
    contributes d tokens (iterations -d .. -1), in write order."""
    out: list[tuple[DepEdge, Token]] = []
    for e in ddg.data_edges():
        for neg in range(-e.distance, 0):
            out.append((e, value_token(e.src, neg)))
    return out


def carried_out_count(ddg: Ddg) -> int:
    """Values still in queues after the loop drains: same count as the
    carried-in tokens (each distance-d edge keeps its last d values)."""
    return sum(e.distance for e in ddg.data_edges())

"""Queue register file model: FIFO queues with single-ported access.

Each queue supports at most one write and one read per cycle (the
simplification that makes QRFs cheaper than multi-ported register files);
a write and a read in the same cycle are legal and bypass combinationally
(a zero-length lifetime).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Optional


class QueuePortError(RuntimeError):
    """Two writes or two reads hit one queue in the same cycle."""


class QueueUnderflowError(RuntimeError):
    """A read found the queue empty."""


@dataclass(eq=False)  # identity semantics: queues are hardware instances
class FifoQueue:
    """One hardware queue.

    Tracks peak occupancy and enforces the one-write/one-read-per-cycle
    port discipline; ``capacity`` (positions) is checked when given.
    """

    name: str = "q"
    capacity: Optional[int] = None
    _items: deque = field(default_factory=deque)
    _last_write_cycle: Optional[int] = None
    _last_read_cycle: Optional[int] = None
    max_occupancy: int = 0
    n_writes: int = 0
    n_reads: int = 0

    def push(self, token: Hashable, cycle: int) -> None:
        if self._last_write_cycle == cycle:
            raise QueuePortError(
                f"{self.name}: second write in cycle {cycle}")
        self._last_write_cycle = cycle
        self._items.append(token)
        self.n_writes += 1
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)
        if self.capacity is not None and len(self._items) > self.capacity:
            raise QueuePortError(
                f"{self.name}: occupancy {len(self._items)} exceeds "
                f"capacity {self.capacity} in cycle {cycle}")

    def pop(self, cycle: int) -> Hashable:
        if self._last_read_cycle == cycle:
            raise QueuePortError(
                f"{self.name}: second read in cycle {cycle}")
        self._last_read_cycle = cycle
        if not self._items:
            raise QueueUnderflowError(
                f"{self.name}: read from empty queue in cycle {cycle}")
        self.n_reads += 1
        return self._items.popleft()

    def preload(self, token: Hashable) -> None:
        """Fill an initial (pre-loop) value; no port accounting."""
        self._items.append(token)
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)

    @property
    def occupancy(self) -> int:
        return len(self._items)

    def drain(self) -> list[Hashable]:
        out = list(self._items)
        self._items.clear()
        return out

"""Cycle-level token simulator for (partitioned) modulo schedules.

The simulator executes N iterations of a scheduled loop on the queue
machine: every value is the token ``("v", producer, iteration)``; producers
push tokens into the FIFO queues chosen by the allocator at
``sigma + latency (+ k*II)`` and consumers pop at ``sigma (+ k*II)``,
checking the popped token against the DDG's reference semantics
(:mod:`repro.sim.reference`).

One run therefore proves, end to end, that

* the schedule honours every dependence (a violated one pops a wrong or
  missing token),
* the queue allocation is FIFO-consistent (an incompatible sharing pops
  tokens out of order),
* copy fan-out trees route every value to every consumer,
* cluster adjacency holds (a lifetime in an impossible location fails
  during extraction),
* port discipline holds (one write and one read per queue per cycle; write
  port counts per FU: 1, copies 2),
* queue occupancy stays within the allocator's predicted depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.operations import FuType
from repro.machine.resources import HARDWARE_POOLS
from repro.regalloc.lifetimes import Location
from repro.regalloc.queues import ScheduleQueueUsage
from repro.sched.schedule import ModuloSchedule

from .qrf import FifoQueue
from .reference import value_token


class SimulationError(RuntimeError):
    """Any divergence between the machine execution and the reference."""


@dataclass
class SimReport:
    """Outcome of one simulation."""

    iterations: int
    cycles: int                 # model cycles: (N + SC - 1) * II
    last_event_cycle: int
    ops_executed: int
    reads_checked: int
    epilogue_reads: int
    n_queues: int
    max_occupancy: dict[str, int] = field(default_factory=dict)
    predicted_depth: dict[str, int] = field(default_factory=dict)

    @property
    def dynamic_ipc(self) -> float:
        return self.ops_executed / self.cycles if self.cycles else 0.0

    @property
    def peak_queue_occupancy(self) -> int:
        return max(self.max_occupancy.values(), default=0)


class VliwSimulator:
    """Binds a schedule to a queue allocation and executes it."""

    def __init__(self, sched: ModuloSchedule, usage: ScheduleQueueUsage,
                 *, capacities: Optional[dict[FuType, int]] = None) -> None:
        self.sched = sched
        self.usage = usage
        self.capacities = capacities
        self._check_write_ports()
        self._queues: dict[tuple[Location, int], FifoQueue] = {}
        self._edge_queue: dict[tuple[int, int, int], FifoQueue] = {}
        self._edge_loc: dict[tuple[int, int, int], Location] = {}
        for loc, alloc in usage.by_location.items():
            for (p, c, key), qidx in alloc.assignment().items():
                qkey = (loc, qidx)
                if qkey not in self._queues:
                    self._queues[qkey] = FifoQueue(
                        name=f"{loc.describe()}#{qidx}")
                self._edge_queue[(p, c, key)] = self._queues[qkey]
                self._edge_loc[(p, c, key)] = loc

        # every DATA edge must have a queue
        for e in sched.ddg.data_edges():
            if (e.src, e.dst, e.key) not in self._edge_queue:
                raise SimulationError(
                    f"edge {e.src}->{e.dst}#{e.key} has no queue assigned")

    # ------------------------------------------------------------ checks

    def _check_write_ports(self) -> None:
        ddg = self.sched.ddg
        arr = ddg.arrays()
        out_ptr, out_data = arr.out_ptr, arr.out_data
        for i in range(arr.n):
            fanout = sum(out_data[j]
                         for j in range(out_ptr[i], out_ptr[i + 1]))
            if fanout <= 1:
                continue
            op = ddg.op(arr.ids[i])
            limit = 2 if op.is_copy else 1
            if fanout > limit:
                raise SimulationError(
                    f"{op.name} must write {fanout} queues but has "
                    f"{limit} write port(s); run insert_copies first")

    # --------------------------------------------------------------- run

    def run(self, iterations: Optional[int] = None) -> SimReport:
        sched = self.sched
        ddg = sched.ddg
        n = iterations if iterations is not None else max(
            sched.stage_count + 2, 4)
        if n < 1:
            raise ValueError("iterations must be >= 1")

        # -- loop-carried initial values ----------------------------------
        # Each distance-d edge needs d pre-loop values.  Their FIFO slot is
        # the *virtual* write time S + k*II (k < 0): values whose slot is
        # negative exist before the loop starts (preloaded, in slot
        # order); values whose slot falls inside the loop are injected by
        # the prologue at exactly that cycle (the producer's pattern slot
        # for that k is empty by construction, so no port conflict).
        prefill: dict[FifoQueue, list[tuple[int, object]]] = {}
        injections: dict[int, list[tuple[FifoQueue, object]]] = {}
        for e in ddg.data_edges():
            q = self._edge_queue[(e.src, e.dst, e.key)]
            write0 = sched.sigma[e.src] + e.latency
            for neg in range(-e.distance, 0):
                slot = write0 + neg * sched.ii
                token = value_token(e.src, neg)
                if slot < 0:
                    prefill.setdefault(q, []).append((slot, token))
                else:
                    injections.setdefault(slot, []).append((q, token))
        for q, entries in prefill.items():
            times = [t for t, _tok in entries]
            if len(set(times)) != len(times):
                raise SimulationError(
                    f"{q.name}: colliding initial-value write times")
            for _t, token in sorted(entries, key=lambda it: it[0]):
                q.preload(token)

        # -- event tables (packed: cycle-indexed lists, no per-event
        #    dict probes or eager error strings) --------------------------
        ii = sched.ii
        sigma = sched.sigma
        arr = ddg.arrays()
        # per-op static bindings, one pass over the graph instead of one
        # per (op, iteration)
        op_writes: dict[int, list[FifoQueue]] = {}
        op_reads: dict[int, list[tuple[FifoQueue, int, int, int]]] = {}
        for e in ddg.data_edges():
            q = self._edge_queue[(e.src, e.dst, e.key)]
            op_writes.setdefault(e.src, []).append(q)
            op_reads.setdefault(e.dst, []).append(
                (q, e.src, e.distance, e.dst))

        span = (n - 1) * ii
        last_cycle = 0
        for op_id, t0 in sigma.items():
            top = t0 + span
            lat = ddg.op(op_id).latency
            if op_writes.get(op_id) and top + lat > last_cycle:
                last_cycle = top + lat
            elif top > last_cycle:
                last_cycle = top
        for slot in injections:
            if slot > last_cycle:
                last_cycle = slot
        n_cycles = last_cycle + 1
        # one slot per cycle; lists are created lazily on first event
        writes: list = [None] * n_cycles
        reads: list = [None] * n_cycles
        issues: list = [None] * n_cycles

        check_issues = self.capacities is not None
        if check_issues:
            pool_caps = [self.capacities.get(p, 0) for p in HARDWARE_POOLS]
            cluster_of = sched.cluster_of
            issue_key = {
                o: (cluster_of.get(o, 0), arr.pool[arr.index[o]])
                for o in sigma}
        for op_id, t0 in sigma.items():
            w = op_writes.get(op_id)
            r = op_reads.get(op_id)
            lat = ddg.op(op_id).latency
            for k in range(n):
                t = t0 + k * ii
                if check_issues:
                    if issues[t] is None:
                        issues[t] = []
                    issues[t].append(op_id)
                if w:
                    tw = t + lat
                    if writes[tw] is None:
                        writes[tw] = []
                    wl = writes[tw]
                    for q in w:
                        wl.append((q, ("v", op_id, k)))
                if r:
                    if reads[t] is None:
                        reads[t] = []
                    rl = reads[t]
                    for q, src, dist, dst in r:
                        # expected token ("v", src, k - dist), kept
                        # unpacked; the error string is built lazily
                        rl.append((q, src, k - dist, dst, k))

        # -- epilogue drains ----------------------------------------------
        # The last `distance` values of every carried lifetime are the
        # loop's live-out state.  The epilogue reads them out at their
        # natural slot (consumer's would-be read time) so they never block
        # younger values sharing the queue.
        epilogue_reads = 0
        for e in ddg.data_edges():
            if e.distance == 0:
                continue
            q = self._edge_queue[(e.src, e.dst, e.key)]
            read0 = sigma[e.dst] + e.distance * ii
            for k in range(n - e.distance, n):
                t = read0 + k * ii
                if t > last_cycle:
                    last_cycle = t
                    n_cycles = t + 1
                    writes.extend([None] * (n_cycles - len(writes)))
                    reads.extend([None] * (n_cycles - len(reads)))
                    issues.extend([None] * (n_cycles - len(issues)))
                if reads[t] is None:
                    reads[t] = []
                reads[t].append((q, e.src, k, e.src, k, True))
                epilogue_reads += 1

        # -- cycle loop: writes first (bypass), then reads -----------------
        reads_checked = 0
        # occupancy is measured at end of cycle: a value written at t
        # counts at t, a value read at t does not (half-open lifetimes,
        # matching regalloc.lifetimes.steady_state_occupancy); a
        # same-cycle write+read is the combinational bypass and never
        # occupies a position.
        occ_max: dict[FifoQueue, int] = {
            q: q.occupancy for q in self._queues.values()}
        for t in range(last_cycle + 1):
            if check_issues and issues[t]:
                per_pool: dict[tuple[int, int], int] = {}
                for op_id in issues[t]:
                    key = issue_key[op_id]
                    per_pool[key] = per_pool.get(key, 0) + 1
                for (cl, pid), count in per_pool.items():
                    if count > pool_caps[pid]:
                        raise SimulationError(
                            f"cycle {t}: cluster {cl} issues {count} ops "
                            f"on {HARDWARE_POOLS[pid].value}")
            touched = set()
            for q, token in injections.get(t, ()):
                q.push(token, t)
                touched.add(q)
            if writes[t]:
                for q, token in writes[t]:
                    q.push(token, t)
                    touched.add(q)
            if reads[t]:
                for entry in reads[t]:
                    q, src, k_src = entry[0], entry[1], entry[2]
                    got = q.pop(t)
                    touched.add(q)
                    if got != ("v", src, k_src):
                        if len(entry) == 6:
                            who = f"epilogue[{ddg.op(src).name},{entry[4]}]"
                        else:
                            who = f"{ddg.op(entry[3]).name}[{entry[4]}]"
                        raise SimulationError(
                            f"cycle {t}: {who} read {got} from {q.name}, "
                            f"expected {value_token(src, k_src)} -- "
                            f"FIFO order broken")
                    reads_checked += 1
            for q in touched:
                if q.occupancy > occ_max[q]:
                    occ_max[q] = q.occupancy

        # -- drain check: the epilogue must have emptied every queue -------
        for _qkey, q in sorted(self._queues.items(),
                               key=lambda kv: kv[1].name):
            left = q.drain()
            if left:
                raise SimulationError(
                    f"{q.name}: {len(left)} tokens left after the "
                    f"epilogue drain: {left[:4]}")

        # -- occupancy vs allocator prediction -----------------------------
        # with epilogue drains at natural slots, a finite run's occupancy
        # never exceeds the allocator's steady-state + prologue analysis
        max_occ: dict[str, int] = {}
        predicted: dict[str, int] = {}
        for (loc, qidx), q in self._queues.items():
            max_occ[q.name] = occ_max[q]
            predicted[q.name] = self.usage.by_location[loc].depths[qidx]
            if occ_max[q] > predicted[q.name]:
                raise SimulationError(
                    f"{q.name}: observed occupancy {occ_max[q]} "
                    f"exceeds predicted depth {predicted[q.name]}")

        return SimReport(
            iterations=n,
            cycles=sched.cycles_for(n),
            last_event_cycle=last_cycle,
            ops_executed=n * sched.n_ops,
            reads_checked=reads_checked,
            epilogue_reads=epilogue_reads,
            n_queues=len(self._queues),
            max_occupancy=max_occ,
            predicted_depth=predicted,
        )


def simulate(sched: ModuloSchedule, usage: ScheduleQueueUsage, *,
             iterations: Optional[int] = None,
             capacities: Optional[dict[FuType, int]] = None) -> SimReport:
    """One-call convenience wrapper around :class:`VliwSimulator`."""
    return VliwSimulator(sched, usage, capacities=capacities).run(iterations)

"""Cycle-level token simulator for (partitioned) modulo schedules.

The simulator executes N iterations of a scheduled loop on the queue
machine: every value is the token ``("v", producer, iteration)``; producers
push tokens into the FIFO queues chosen by the allocator at
``sigma + latency (+ k*II)`` and consumers pop at ``sigma (+ k*II)``,
checking the popped token against the DDG's reference semantics
(:mod:`repro.sim.reference`).

One run therefore proves, end to end, that

* the schedule honours every dependence (a violated one pops a wrong or
  missing token),
* the queue allocation is FIFO-consistent (an incompatible sharing pops
  tokens out of order),
* copy fan-out trees route every value to every consumer,
* cluster adjacency holds (a lifetime in an impossible location fails
  during extraction),
* port discipline holds (one write and one read per queue per cycle; write
  port counts per FU: 1, copies 2),
* queue occupancy stays within the allocator's predicted depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.operations import FuType
from repro.machine.resources import pool_for
from repro.regalloc.lifetimes import Location
from repro.regalloc.queues import ScheduleQueueUsage
from repro.sched.schedule import ModuloSchedule

from .qrf import FifoQueue
from .reference import expected_operand, value_token


class SimulationError(RuntimeError):
    """Any divergence between the machine execution and the reference."""


@dataclass
class SimReport:
    """Outcome of one simulation."""

    iterations: int
    cycles: int                 # model cycles: (N + SC - 1) * II
    last_event_cycle: int
    ops_executed: int
    reads_checked: int
    epilogue_reads: int
    n_queues: int
    max_occupancy: dict[str, int] = field(default_factory=dict)
    predicted_depth: dict[str, int] = field(default_factory=dict)

    @property
    def dynamic_ipc(self) -> float:
        return self.ops_executed / self.cycles if self.cycles else 0.0

    @property
    def peak_queue_occupancy(self) -> int:
        return max(self.max_occupancy.values(), default=0)


class VliwSimulator:
    """Binds a schedule to a queue allocation and executes it."""

    def __init__(self, sched: ModuloSchedule, usage: ScheduleQueueUsage,
                 *, capacities: Optional[dict[FuType, int]] = None) -> None:
        self.sched = sched
        self.usage = usage
        self.capacities = capacities
        self._check_write_ports()
        self._queues: dict[tuple[Location, int], FifoQueue] = {}
        self._edge_queue: dict[tuple[int, int, int], FifoQueue] = {}
        self._edge_loc: dict[tuple[int, int, int], Location] = {}
        for loc, alloc in usage.by_location.items():
            for (p, c, key), qidx in alloc.assignment().items():
                qkey = (loc, qidx)
                if qkey not in self._queues:
                    self._queues[qkey] = FifoQueue(
                        name=f"{loc.describe()}#{qidx}")
                self._edge_queue[(p, c, key)] = self._queues[qkey]
                self._edge_loc[(p, c, key)] = loc

        # every DATA edge must have a queue
        for e in sched.ddg.data_edges():
            if (e.src, e.dst, e.key) not in self._edge_queue:
                raise SimulationError(
                    f"edge {e.src}->{e.dst}#{e.key} has no queue assigned")

    # ------------------------------------------------------------ checks

    def _check_write_ports(self) -> None:
        ddg = self.sched.ddg
        for op_id in ddg.op_ids:
            op = ddg.op(op_id)
            fanout = ddg.fanout(op_id)
            limit = 2 if op.is_copy else 1
            if fanout > limit:
                raise SimulationError(
                    f"{op.name} must write {fanout} queues but has "
                    f"{limit} write port(s); run insert_copies first")

    # --------------------------------------------------------------- run

    def run(self, iterations: Optional[int] = None) -> SimReport:
        sched = self.sched
        ddg = sched.ddg
        n = iterations if iterations is not None else max(
            sched.stage_count + 2, 4)
        if n < 1:
            raise ValueError("iterations must be >= 1")

        # -- loop-carried initial values ----------------------------------
        # Each distance-d edge needs d pre-loop values.  Their FIFO slot is
        # the *virtual* write time S + k*II (k < 0): values whose slot is
        # negative exist before the loop starts (preloaded, in slot
        # order); values whose slot falls inside the loop are injected by
        # the prologue at exactly that cycle (the producer's pattern slot
        # for that k is empty by construction, so no port conflict).
        prefill: dict[FifoQueue, list[tuple[int, object]]] = {}
        injections: dict[int, list[tuple[FifoQueue, object]]] = {}
        for e in ddg.data_edges():
            q = self._edge_queue[(e.src, e.dst, e.key)]
            write0 = sched.sigma[e.src] + e.latency
            for neg in range(-e.distance, 0):
                slot = write0 + neg * sched.ii
                token = value_token(e.src, neg)
                if slot < 0:
                    prefill.setdefault(q, []).append((slot, token))
                else:
                    injections.setdefault(slot, []).append((q, token))
        for q, entries in prefill.items():
            times = [t for t, _tok in entries]
            if len(set(times)) != len(times):
                raise SimulationError(
                    f"{q.name}: colliding initial-value write times")
            for _t, token in sorted(entries, key=lambda it: it[0]):
                q.preload(token)

        # -- event tables -------------------------------------------------
        writes: dict[int, list[tuple[FifoQueue, object]]] = {}
        reads: dict[int, list[tuple[FifoQueue, object, str]]] = {}
        issues: dict[int, list[int]] = {}
        for op_id, t0 in sched.sigma.items():
            lat = ddg.op(op_id).latency
            out_edges = ddg.consumers(op_id)
            in_edges = ddg.producers(op_id)
            for k in range(n):
                t = t0 + k * sched.ii
                issues.setdefault(t, []).append(op_id)
                for e in out_edges:
                    writes.setdefault(t + lat, []).append(
                        (self._edge_queue[(e.src, e.dst, e.key)],
                         value_token(op_id, k)))
                for e in in_edges:
                    reads.setdefault(t, []).append(
                        (self._edge_queue[(e.src, e.dst, e.key)],
                         expected_operand(e, k),
                         f"{ddg.op(e.dst).name}[{k}]"))

        # -- epilogue drains ----------------------------------------------
        # The last `distance` values of every carried lifetime are the
        # loop's live-out state.  The epilogue reads them out at their
        # natural slot (consumer's would-be read time) so they never block
        # younger values sharing the queue.
        epilogue_reads = 0
        for e in ddg.data_edges():
            if e.distance == 0:
                continue
            q = self._edge_queue[(e.src, e.dst, e.key)]
            read0 = sched.sigma[e.dst] + e.distance * sched.ii
            for k in range(n - e.distance, n):
                t = read0 + k * sched.ii
                reads.setdefault(t, []).append(
                    (q, value_token(e.src, k),
                     f"epilogue[{ddg.op(e.src).name},{k}]"))
                epilogue_reads += 1

        # -- cycle loop: writes first (bypass), then reads -----------------
        last_cycle = max(
            max(writes, default=0), max(reads, default=0),
            max(issues, default=0))
        reads_checked = 0
        # occupancy is measured at end of cycle: a value written at t
        # counts at t, a value read at t does not (half-open lifetimes,
        # matching regalloc.lifetimes.steady_state_occupancy); a
        # same-cycle write+read is the combinational bypass and never
        # occupies a position.
        occ_max: dict[FifoQueue, int] = {
            q: q.occupancy for q in self._queues.values()}
        for t in range(last_cycle + 1):
            if self.capacities is not None and t in issues:
                per_pool: dict[tuple[int, FuType], int] = {}
                for op_id in issues[t]:
                    key = (sched.cluster_of.get(op_id, 0),
                           pool_for(ddg.op(op_id).fu_type))
                    per_pool[key] = per_pool.get(key, 0) + 1
                for (cl, pool), count in per_pool.items():
                    if count > self.capacities.get(pool, 0):
                        raise SimulationError(
                            f"cycle {t}: cluster {cl} issues {count} ops "
                            f"on {pool.value}")
            touched = set()
            for q, token in injections.get(t, ()):
                q.push(token, t)
                touched.add(q)
            for q, token in writes.get(t, ()):
                q.push(token, t)
                touched.add(q)
            for q, expected, who in reads.get(t, ()):
                got = q.pop(t)
                touched.add(q)
                if got != expected:
                    raise SimulationError(
                        f"cycle {t}: {who} read {got} from {q.name}, "
                        f"expected {expected} -- FIFO order broken")
                reads_checked += 1
            for q in touched:
                if q.occupancy > occ_max[q]:
                    occ_max[q] = q.occupancy

        # -- drain check: the epilogue must have emptied every queue -------
        for _qkey, q in sorted(self._queues.items(),
                               key=lambda kv: kv[1].name):
            left = q.drain()
            if left:
                raise SimulationError(
                    f"{q.name}: {len(left)} tokens left after the "
                    f"epilogue drain: {left[:4]}")

        # -- occupancy vs allocator prediction -----------------------------
        # with epilogue drains at natural slots, a finite run's occupancy
        # never exceeds the allocator's steady-state + prologue analysis
        max_occ: dict[str, int] = {}
        predicted: dict[str, int] = {}
        for (loc, qidx), q in self._queues.items():
            max_occ[q.name] = occ_max[q]
            predicted[q.name] = self.usage.by_location[loc].depths[qidx]
            if occ_max[q] > predicted[q.name]:
                raise SimulationError(
                    f"{q.name}: observed occupancy {occ_max[q]} "
                    f"exceeds predicted depth {predicted[q.name]}")

        return SimReport(
            iterations=n,
            cycles=sched.cycles_for(n),
            last_event_cycle=last_cycle,
            ops_executed=n * sched.n_ops,
            reads_checked=reads_checked,
            epilogue_reads=epilogue_reads,
            n_queues=len(self._queues),
            max_occupancy=max_occ,
            predicted_depth=predicted,
        )


def simulate(sched: ModuloSchedule, usage: ScheduleQueueUsage, *,
             iterations: Optional[int] = None,
             capacities: Optional[dict[FuType, int]] = None) -> SimReport:
    """One-call convenience wrapper around :class:`VliwSimulator`."""
    return VliwSimulator(sched, usage, capacities=capacities).run(iterations)

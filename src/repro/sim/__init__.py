"""Cycle-level simulation and end-to-end verification."""

from .checker import PipelineResult, run_pipeline
from .qrf import FifoQueue, QueuePortError, QueueUnderflowError
from .reference import (OperandCheck, Token, carried_in_tokens,
                        carried_out_count, enumerate_expected,
                        expected_operand, value_token)
from .vliwsim import SimReport, SimulationError, VliwSimulator, simulate

__all__ = [
    "PipelineResult", "run_pipeline",
    "FifoQueue", "QueuePortError", "QueueUnderflowError",
    "OperandCheck", "Token", "carried_in_tokens", "carried_out_count",
    "enumerate_expected", "expected_operand", "value_token",
    "SimReport", "SimulationError", "VliwSimulator", "simulate",
]

"""End-to-end pipeline checker: compile, allocate, simulate, verify.

This is the one-call integration surface the test-suite (and users who just
want confidence) lean on: it runs the full paper pipeline on a loop --
optional unrolling, copy insertion, (partitioned) modulo scheduling, queue
allocation, and token simulation -- and raises on the first inconsistency.

The registry-parameterised invariant suites drive this entry point once
per engine per kernel, so the whole chain below it runs on the packed
core (DESIGN §5.4): the schedulers consume the loop's
:meth:`~repro.ir.ddg.Ddg.arrays` lowering (built once per loop and
shared by copy insertion, validation, MII bounds and the schedule
audit), and the simulator's cross-check walks cycle-indexed event lists
instead of per-op dicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.ir.copyins import insert_copies
from repro.ir.ddg import Ddg
from repro.ir.unroll import unroll
from repro.obs.trace import span
from repro.machine.cluster import ClusteredMachine
from repro.machine.machine import Machine
from repro.regalloc.queues import ScheduleQueueUsage, allocate_for_schedule
from repro.sched.iisearch import DEFAULT_II_SEARCH
from repro.sched.ims import ImsConfig
from repro.sched.partition import PartitionConfig, partitioned_schedule
from repro.sched.partitioners import DEFAULT_PARTITIONER
from repro.sched.schedule import ModuloSchedule
from repro.sched.strategies import DEFAULT_SCHEDULER

from repro.verify import VerificationError, verify_schedule

from .vliwsim import SimReport, simulate

AnyMachine = Union[Machine, ClusteredMachine]


def _prove(sched: ModuloSchedule, machine: AnyMachine) -> None:
    """Static proof of the schedule's invariants (DESIGN §5.9); the
    simulator then replays what the verifier already proved."""
    verdict = verify_schedule(sched, machine)
    if not verdict.ok:
        raise VerificationError(verdict)


@dataclass
class PipelineResult:
    """Everything the full pipeline produced for one loop.

    For conventional-RF machines there is no queue allocation to make and
    the token simulator (a queue-machine model) does not apply: ``usage``
    and ``sim`` are ``None`` and ``registers`` carries the MaxLive report
    instead.
    """

    ddg: Ddg                    # the DDG actually scheduled (post-transform)
    schedule: ModuloSchedule
    usage: Optional[ScheduleQueueUsage]
    sim: Optional[SimReport]
    unroll_factor: int
    n_copies: int
    registers: Optional[object] = None   # RegisterFileReport for CRF runs

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def total_queues(self) -> int:
        if self.usage is None:
            raise ValueError("conventional-RF pipeline has no queues")
        return self.usage.total_queues


def run_pipeline(ddg: Ddg, machine: AnyMachine, *,
                 unroll_factor: int = 1,
                 copy_strategy: str = "slack",
                 iterations: Optional[int] = None,
                 sched_config: Optional[object] = None,
                 scheduler: str = DEFAULT_SCHEDULER,
                 partitioner: str = DEFAULT_PARTITIONER,
                 ii_search: str = DEFAULT_II_SEARCH) -> PipelineResult:
    """Full paper pipeline with end-to-end verification.

    ``scheduler`` picks the single-cluster engine from the strategy
    registry and ``partitioner`` the clustered engine from the
    partitioner registry; ``ii_search`` the II search mode for either.
    A typed ``sched_config`` selects *and* configures its own engine
    (:class:`ImsConfig` -> ``"ims"``, ``SmsConfig`` -> ``"sms"``,
    :class:`PartitionConfig` -> its own ``partitioner`` field), taking
    precedence over the names and the search mode; clustered machines
    always go through a partitioning engine.  Raises
    :class:`repro.sim.vliwsim.SimulationError`,
    :class:`repro.sched.schedule.SchedulingError` or a validation error if
    anything is inconsistent; returns the artefacts otherwise.
    """
    with span("pipeline.unroll"):
        work = unroll(ddg, unroll_factor) if unroll_factor > 1 else ddg
    n_copies = 0
    if machine.needs_copies:
        with span("pipeline.copy_insert"):
            res = insert_copies(work, strategy=copy_strategy)  # type: ignore[arg-type]
        work, n_copies = res.ddg, res.n_copies

    if isinstance(machine, ClusteredMachine):
        if isinstance(sched_config, PartitionConfig):
            cfg = sched_config
        elif sched_config is not None:
            raise TypeError(
                f"unsupported sched_config "
                f"{type(sched_config).__name__} for a clustered machine "
                f"(expected PartitionConfig)")
        else:
            cfg = PartitionConfig(partitioner=partitioner,
                                  ii_search=ii_search)
        with span("pipeline.schedule"):
            sched = partitioned_schedule(work, machine, config=cfg)
        with span("pipeline.allocate"):
            usage = allocate_for_schedule(sched, machine)
        capacities = machine.cluster.fus.as_dict()
    else:
        from repro.sched.strategies import SmsConfig, get_scheduler
        if isinstance(sched_config, ImsConfig):
            engine = get_scheduler("ims", config=sched_config)
        elif isinstance(sched_config, SmsConfig):
            engine = get_scheduler("sms", config=sched_config)
        elif sched_config is not None:
            raise TypeError(
                f"unsupported sched_config {type(sched_config).__name__} "
                f"for a single-cluster machine")
        else:
            engine = get_scheduler(scheduler)
        mode = None if sched_config is not None else ii_search
        with span("pipeline.schedule"):
            sched = engine.schedule(work, machine, ii_search=mode).schedule
        capacities = machine.fus.as_dict()
        if not machine.needs_copies:
            # conventional RF: no queues to allocate, the queue simulator
            # does not apply -- report register demand instead
            from repro.regalloc.conventional import register_requirement
            with span("pipeline.regalloc"):
                registers = register_requirement(sched)
            with span("pipeline.verify"):
                _prove(sched, machine)
            return PipelineResult(
                ddg=sched.ddg, schedule=sched, usage=None, sim=None,
                unroll_factor=unroll_factor, n_copies=0,
                registers=registers)
        with span("pipeline.allocate"):
            usage = allocate_for_schedule(sched)

    with span("pipeline.verify"):
        usage.verify()
        _prove(sched, machine)
    with span("pipeline.simulate"):
        sim = simulate(sched, usage, iterations=iterations,
                       capacities=capacities)
    return PipelineResult(
        ddg=sched.ddg, schedule=sched, usage=usage, sim=sim,
        unroll_factor=unroll_factor, n_copies=n_copies)

"""Register allocation: queue allocation (QRF) and conventional-RF bounds."""

from .conventional import (RegisterFileReport, port_requirement,
                           register_requirement)
from .lifetimes import (Lifetime, Location, LocationKind, extract_lifetimes,
                        required_positions,
                        location_of_edge, max_live, merged_value_lifetimes,
                        steady_state_occupancy)
from .rotating import (MveReport, mve_register_requirement,
                       mve_unroll_factor, rotating_register_requirement)
from .spill import (SpillReport, allocate_with_budget, spill_cost_cycles,
                    spill_summary)
from .queues import (QueueAllocation, ScheduleQueueUsage, allocate_queues,
                     allocate_for_schedule, fifo_order_consistent,
                     q_compatible, queue_depth)

__all__ = [
    "RegisterFileReport", "port_requirement", "register_requirement",
    "Lifetime", "Location", "LocationKind", "extract_lifetimes",
    "location_of_edge", "max_live", "merged_value_lifetimes",
    "required_positions",
    "steady_state_occupancy",
    "MveReport", "mve_register_requirement", "mve_unroll_factor",
    "rotating_register_requirement",
    "SpillReport", "allocate_with_budget", "spill_cost_cycles",
    "spill_summary",
    "QueueAllocation", "ScheduleQueueUsage", "allocate_queues",
    "allocate_for_schedule", "fifo_order_consistent", "q_compatible",
    "queue_depth",
]

"""Modulo variable expansion (MVE) and rotating register files.

The conventional-RF baseline of Section 2 needs more than MaxLive when the
hardware has no rotating register file: a value whose lifetime exceeds II
would be overwritten by the next iteration's instance, so the kernel must
be *unrolled* (modulo variable expansion, Lam 1988) until every lifetime
fits, or the register file must rotate (Cydra 5 [17], Rau's MII work
[16]).  This module quantifies both designs:

* :func:`mve_unroll_factor` -- kernel replication a static RF needs:
  ``kmax = max_v ceil(lifetime(v) / II)``;
* :func:`mve_register_requirement` -- registers after MVE: each value
  needs ``ceil(lifetime/II)`` names, summed;
* :func:`rotating_register_requirement` -- a rotating file achieves
  MaxLive + 1 (the classic bound: one extra register because allocation is
  done on a circular timeline).

Together with :func:`repro.regalloc.conventional.register_requirement`
and the queue allocator these feed the supplementary register-pressure
study (experiment S1): the Section 1 argument that QRFs sidestep both the
port problem *and* the register-name problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .lifetimes import Lifetime, max_live, merged_value_lifetimes

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.schedule import ModuloSchedule


@dataclass(frozen=True)
class MveReport:
    """Static-RF cost of a modulo schedule without rotating registers."""

    kernel_unroll: int          # kmax: kernel copies needed
    registers: int              # register names after MVE
    max_live: int               # the rotating-RF reference point

    @property
    def code_growth(self) -> int:
        """Kernel copies beyond the software pipeline itself."""
        return self.kernel_unroll


def _value_lifetimes(sched: "ModuloSchedule") -> list[Lifetime]:
    return merged_value_lifetimes(sched)


def mve_unroll_factor(sched: "ModuloSchedule") -> int:
    """Kernel replication needed by a non-rotating RF (``kmax``).

    A value live for L cycles has ``ceil(L / II)`` instances in flight;
    distinct instances need distinct names, so the kernel is replicated
    ``kmax = max_v ceil(L_v / II)`` times (Lam's modulo variable
    expansion).  1 means no replication (every lifetime fits in II).
    """
    kmax = 1
    for lt in _value_lifetimes(sched):
        if lt.length > 0:
            kmax = max(kmax, -(-lt.length // sched.ii))
    return kmax


def mve_register_requirement(sched: "ModuloSchedule") -> MveReport:
    """Registers a static RF needs after modulo variable expansion.

    Every value gets ``ceil(L/II)`` names (its concurrent instances);
    zero-length values are pure bypasses and get none.  This is the
    textbook upper bound; smarter post-MVE colouring can share names
    across values, so the truth lies between MaxLive and this number.
    """
    lifetimes = _value_lifetimes(sched)
    registers = 0
    for lt in lifetimes:
        if lt.length > 0:
            registers += -(-lt.length // sched.ii)
    return MveReport(
        kernel_unroll=mve_unroll_factor(sched),
        registers=registers,
        max_live=max_live(lifetimes, sched.ii),
    )


def rotating_register_requirement(sched: "ModuloSchedule") -> int:
    """Registers with rotating-file hardware: ``MaxLive + 1`` (the wand
    bound -- rotation renames instances for free, one spare slot breaks
    the circular-allocation tie)."""
    lifetimes = _value_lifetimes(sched)
    live = max_live(lifetimes, sched.ii)
    return live + 1 if live else 0

"""Queue register allocation via the Q-Compatibility test (Theorem 1.1).

Two lifetimes may share a FIFO queue iff their periodic write order equals
their periodic read order.  With write offsets ``S_a, S_b``, lengths
``L_a <= L_b`` and ``delta = (S_b - S_a) mod II`` this is (DESIGN.md §5.2)::

    delta != 0   and   L_b - L_a < II - delta

strict because a queue has one write port and one read port: ``delta == 0``
would collide two writes, ``L_b - L_a == II - delta`` two reads.

:func:`fifo_order_consistent` is the brute-force reference (explicit event
simulation over enough periods); the property tests check both agree on
random lifetimes, and the allocator only ever uses the closed form.

Allocation is greedy first-fit over lifetimes sorted by (start, length):
pairwise compatibility within a queue is *sufficient* for a global FIFO
order because the write order of a set of periodic lifetimes is a total
cyclic order and each pair's read order matching its write order makes the
full read order match too (tested against the simulator in
``tests/sim/test_end_to_end.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .lifetimes import Lifetime, Location, LocationKind, required_positions


def q_compatible(a: Lifetime, b: Lifetime, ii: int) -> bool:
    """Closed-form Q-Compatibility test (paper Theorem 1.1, strict form)."""
    if ii < 1:
        raise ValueError("II must be >= 1")
    if a is b:
        return True
    if a.length > b.length:
        a, b = b, a
    delta = (b.start - a.start) % ii
    if delta == 0:
        return False
    return b.length - a.length < ii - delta


def fifo_order_consistent(a: Lifetime, b: Lifetime, ii: int, *,
                          periods: Optional[int] = None) -> bool:
    """Reference implementation: simulate the write/read event sequence of
    both lifetimes over enough periods and check FIFO delivery.

    Writes happen before reads within a cycle (same-cycle bypass).  Two
    writes or two reads in the same cycle violate the single-port queue.
    """
    if periods is None:
        periods = max(a.length, b.length) // ii + 4
    events: list[tuple[int, int, int, object]] = []
    for idx, lt in enumerate((a, b)):
        for k in range(periods):
            events.append((lt.start + k * ii, 0, idx, (idx, k)))   # write
            events.append((lt.end + k * ii, 1, idx, (idx, k)))     # read
    events.sort(key=lambda ev: (ev[0], ev[1], ev[2]))

    horizon = periods * ii  # reads beyond this may miss truncated writes
    fifo: list[object] = []
    last_write_cycle: Optional[int] = None
    last_read_cycle: Optional[int] = None
    for time, kind, _idx, token in events:
        if kind == 0:
            if last_write_cycle == time:
                return False  # two writes, one port
            last_write_cycle = time
            fifo.append(token)
        else:
            if time >= horizon:
                continue
            if last_read_cycle == time:
                return False  # two reads, one port
            last_read_cycle = time
            if not fifo or fifo.pop(0) != token:
                return False
    return True


def queue_depth(lifetimes: list[Lifetime], ii: int) -> int:
    """Positions one queue must have for these lifetimes over a full
    execution (prologue preloads included)."""
    return required_positions(lifetimes, ii)


@dataclass
class QueueAllocation:
    """Result of allocating one location's lifetimes to queues."""

    ii: int
    location: Location
    queues: list[list[Lifetime]] = field(default_factory=list)

    @property
    def n_queues(self) -> int:
        return len(self.queues)

    @property
    def depths(self) -> list[int]:
        return [queue_depth(q, self.ii) for q in self.queues]

    @property
    def max_depth(self) -> int:
        return max(self.depths, default=0)

    def queue_of(self, lt: Lifetime) -> int:
        for i, q in enumerate(self.queues):
            if lt in q:
                return i
        raise KeyError(lt)

    def assignment(self) -> dict[tuple[int, int, int], int]:
        """(producer, consumer, edge_key) -> queue index."""
        out: dict[tuple[int, int, int], int] = {}
        for i, q in enumerate(self.queues):
            for lt in q:
                out[(lt.producer, lt.consumer, lt.edge_key)] = i
        return out

    def verify(self) -> None:
        """Re-check pairwise compatibility of every queue (test hook)."""
        for q in self.queues:
            for i, a in enumerate(q):
                for b in q[i + 1:]:
                    if not q_compatible(a, b, self.ii):
                        raise AssertionError(
                            f"incompatible lifetimes share a queue: "
                            f"{a.describe()} / {b.describe()}")


def allocate_queues(lifetimes: Iterable[Lifetime], ii: int, *,
                    location: Optional[Location] = None) -> QueueAllocation:
    """Greedy first-fit allocation of lifetimes to queues.

    Lifetimes are processed by (start, length, producer, consumer); each
    goes to the first queue whose members are all Q-compatible with it, or
    opens a new queue.  Zero-length lifetimes (same-cycle bypass) still
    take a queue slot assignment (the datum flows through the queue's
    bypass path) but never occupy a position.
    """
    loc = location or Location(LocationKind.PRIVATE, 0)
    alloc = QueueAllocation(ii=ii, location=loc)
    ordered = sorted(
        lifetimes,
        key=lambda lt: (lt.start, lt.length, lt.producer, lt.consumer,
                        lt.edge_key))
    for lt in ordered:
        for q in alloc.queues:
            if all(q_compatible(lt, other, ii) for other in q):
                q.append(lt)
                break
        else:
            alloc.queues.append([lt])
    return alloc


@dataclass
class ScheduleQueueUsage:
    """Machine-wide queue requirements of one schedule."""

    ii: int
    by_location: dict[Location, QueueAllocation]

    @property
    def total_queues(self) -> int:
        return sum(a.n_queues for a in self.by_location.values())

    @property
    def max_queues_per_location(self) -> int:
        return max((a.n_queues for a in self.by_location.values()),
                   default=0)

    @property
    def max_depth(self) -> int:
        return max((a.max_depth for a in self.by_location.values()),
                   default=0)

    def private_queues(self, cluster: int) -> int:
        loc = Location(LocationKind.PRIVATE, cluster)
        alloc = self.by_location.get(loc)
        return alloc.n_queues if alloc else 0

    def ring_queues(self, cluster: int, kind: LocationKind) -> int:
        alloc = self.by_location.get(Location(kind, cluster))
        return alloc.n_queues if alloc else 0

    def fits_budget(self, private: int, ring_each_direction: int) -> bool:
        """Does the schedule fit the paper's per-cluster budget
        (Fig. 7: 8 private + 8 per ring direction)?"""
        for loc, alloc in self.by_location.items():
            limit = (private if loc.kind is LocationKind.PRIVATE
                     else ring_each_direction)
            if alloc.n_queues > limit:
                return False
        return True

    def verify(self) -> None:
        for alloc in self.by_location.values():
            alloc.verify()


def allocate_for_schedule(sched, machine=None) -> ScheduleQueueUsage:
    """Allocate queues for every location of a schedule.

    *machine* is the :class:`~repro.machine.cluster.ClusteredMachine` for
    partitioned schedules; omit for single-cluster machines.
    """
    from .lifetimes import extract_lifetimes

    per_loc: dict[Location, list[Lifetime]] = {}
    for lt in extract_lifetimes(sched, machine):
        per_loc.setdefault(lt.location, []).append(lt)
    return ScheduleQueueUsage(
        ii=sched.ii,
        by_location={
            loc: allocate_queues(lts, sched.ii, location=loc)
            for loc, lts in sorted(
                per_loc.items(),
                key=lambda kv: (kv[0].cluster, kv[0].kind.value))
        })

"""Lifetime extraction from modulo schedules.

A *queue lifetime* is one DATA edge of a scheduled loop: the producer
writes the value into a queue at ``sigma(p) + lat(p)`` and the consumer
destructively reads it at ``sigma(c) + d * II`` (iteration-0 times; both
recur every II).  After copy insertion every value has one consumer per
queue, so edges and queue lifetimes coincide.

For clustered schedules each lifetime also has a *location*: the private
queue set of its cluster, or one of the two ring queue sets between
adjacent clusters (Fig. 5b); queues are allocated per location.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.ir.ddg import DepEdge

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cluster import ClusteredMachine
    from repro.sched.schedule import ModuloSchedule


class LocationKind(enum.Enum):
    """Which physical queue set holds a lifetime."""

    PRIVATE = "private"    # producer and consumer in the same cluster
    RING_CW = "ring_cw"    # producer cluster c -> cluster (c+1) % n
    RING_CCW = "ring_ccw"  # producer cluster c -> cluster (c-1) % n


@dataclass(frozen=True)
class Location:
    """A queue set: (kind, owning cluster)."""

    kind: LocationKind
    cluster: int

    def describe(self) -> str:
        return f"{self.kind.value}[{self.cluster}]"


@dataclass(frozen=True)
class Lifetime:
    """One scheduled DATA edge as a queue lifetime.

    ``start``: write cycle (iteration 0); ``length``: cycles until the
    destructive read; ``end = start + length`` is the read cycle.  A
    zero-length lifetime is a same-cycle write+read (bypass).
    """

    producer: int
    consumer: int
    edge_key: int
    start: int
    length: int
    #: loop-carried distance of the underlying edge: the queue is preloaded
    #: with this many initial values before the loop starts, which occupy
    #: positions during the prologue.
    distance: int = 0
    location: Location = Location(LocationKind.PRIVATE, 0)

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(
                f"negative lifetime {self.producer}->{self.consumer}: "
                f"dependence violated")

    @property
    def end(self) -> int:
        return self.start + self.length

    def describe(self) -> str:
        return (f"{self.producer}->{self.consumer} "
                f"[{self.start}, {self.end}) @ {self.location.describe()}")


def _edge_lifetime(sched: "ModuloSchedule", e: DepEdge,
                   location: Location) -> Lifetime:
    start = sched.sigma[e.src] + e.latency
    end = sched.sigma[e.dst] + e.distance * sched.ii
    return Lifetime(e.src, e.dst, e.key, start, end - start, e.distance,
                    location)


def location_of_edge(sched: "ModuloSchedule", e: DepEdge,
                     machine: Optional["ClusteredMachine"] = None
                     ) -> Location:
    """Classify the queue set a DATA edge uses."""
    ca = sched.cluster_of.get(e.src, 0)
    cb = sched.cluster_of.get(e.dst, 0)
    if ca == cb:
        return Location(LocationKind.PRIVATE, ca)
    if machine is None:
        raise ValueError("clustered edge without a machine topology")
    n = machine.n_clusters
    if (ca + 1) % n == cb:
        return Location(LocationKind.RING_CW, ca)
    if (ca - 1) % n == cb:
        return Location(LocationKind.RING_CCW, ca)
    raise ValueError(
        f"edge {e.src}->{e.dst} spans non-adjacent clusters {ca},{cb}")


def extract_lifetimes(sched: "ModuloSchedule",
                      machine: Optional["ClusteredMachine"] = None
                      ) -> list[Lifetime]:
    """All queue lifetimes of a schedule, deterministic order.

    For single-cluster schedules every lifetime lands in
    ``private[0]``; clustered schedules need *machine* for the ring
    topology.  Raises if any dependence is violated (negative length) --
    the schedule should have been validated first.
    """
    out: list[Lifetime] = []
    for e in sched.ddg.data_edges():
        loc = location_of_edge(sched, e, machine)
        out.append(_edge_lifetime(sched, e, loc))
    return out


def merged_value_lifetimes(sched: "ModuloSchedule") -> list[Lifetime]:
    """Per-*value* lifetimes for a conventional register file.

    A conventional RF writes once and reads many times (Fig. 1b): the
    value's register is busy from the write until the *last* read.  Used by
    the MaxLive computation in :mod:`repro.regalloc.conventional`.
    """
    out: list[Lifetime] = []
    for op_id in sched.ddg.op_ids:
        consumers = sched.ddg.consumers(op_id)
        if not consumers:
            continue
        start = sched.sigma[op_id] + sched.ddg.op(op_id).latency
        end = max(sched.sigma[e.dst] + e.distance * sched.ii
                  for e in consumers)
        out.append(Lifetime(op_id, -1, 0, start, end - start))
    return out


def steady_state_occupancy(lifetimes: list[Lifetime], ii: int) -> list[int]:
    """Number of live values at each phase ``0..ii-1`` in steady state.

    A lifetime ``[S, S+L)`` has instances ``[S+k*II, S+L+k*II)`` for every
    iteration k; in steady state the occupancy at absolute time *t* is::

        sum over lifetimes of |{k : S+k*II <= t < S+L+k*II}|

    which is periodic in t with period II.
    """
    if ii < 1:
        raise ValueError("II must be >= 1")
    if not lifetimes:
        return [0] * ii
    # deep in steady state, aligned so index i is phase (t mod ii) == i
    base = (max(lt.end for lt in lifetimes) // ii + 1) * ii
    occ = []
    for phase in range(ii):
        t = base + phase
        total = 0
        for lt in lifetimes:
            if lt.length == 0:
                continue  # same-cycle bypass never occupies a slot
            k_max = (t - lt.start) // ii
            k_min = -(-(t - lt.start - lt.length + 1) // ii)  # ceil
            if k_max >= k_min:
                total += k_max - k_min + 1
        occ.append(total)
    return occ


def max_live(lifetimes: list[Lifetime], ii: int) -> int:
    """Peak steady-state occupancy (MaxLive)."""
    return max(steady_state_occupancy(lifetimes, ii), default=0)


def required_positions(lifetimes: list[Lifetime], ii: int) -> int:
    """Queue positions needed over a whole execution, prologue included.

    Differs from steady-state MaxLive when loop-carried lifetimes are
    preloaded: the initial values of a distance-d lifetime sit in the queue
    from cycle 0 until their reads, so the prologue can hold more values
    than the steady state (even for zero-length / bypass lifetimes).
    Occupancy is end-of-cycle: an instance written at *s* and read at *e*
    occupies [s, e).
    """
    if ii < 1:
        raise ValueError("II must be >= 1")
    if not lifetimes:
        return 0
    horizon = max(lt.end for lt in lifetimes) + 2 * ii
    events: list[tuple[int, int]] = []
    for lt in lifetimes:
        k = -lt.distance
        while True:
            s, e = lt.start + k * ii, lt.end + k * ii
            if s > horizon:
                break
            # pre-loop instances (k < 0) whose virtual write slot is
            # negative exist from before the loop's first cycle (they
            # hold a position at "cycle -1" even when read in cycle 0);
            # those whose slot falls inside the loop are injected by the
            # prologue at exactly that cycle (see repro.sim.vliwsim)
            s_clamped = max(s, -1) if k < 0 else s
            if e > s_clamped:
                events.append((s_clamped, +1))
                events.append((e, -1))
            k += 1
    events.sort()
    peak = cur = 0
    for _t, delta in events:
        cur += delta
        peak = max(peak, cur)
    return peak


def finite_required_positions(lifetimes: list[Lifetime], ii: int,
                              iterations: int) -> int:
    """Queue positions for a *finite* N-iteration execution.

    Adds what :func:`required_positions` cannot see: at the end of the
    loop, the last ``distance`` values of every carried lifetime have been
    written but never read (they are the loop's live-out state) and sit in
    the queue until the epilogue drains them.
    """
    if ii < 1 or iterations < 1:
        raise ValueError("ii and iterations must be >= 1")
    if not lifetimes:
        return 0
    drain = max(lt.end + iterations * ii for lt in lifetimes) + 1
    events: list[tuple[int, int]] = []
    for lt in lifetimes:
        for k in range(-lt.distance, iterations):
            s = lt.start + k * ii
            if k < 0:
                s = max(s, -1)
            if k + lt.distance <= iterations - 1:
                e = lt.end + k * ii
            else:
                e = drain  # never read: carried-out value
            if e > s:
                events.append((s, +1))
                events.append((e, -1))
    events.sort()
    peak = cur = 0
    for _t, delta in events:
        cur += delta
        peak = max(peak, cur)
    return peak

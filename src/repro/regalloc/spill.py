"""Spill analysis for finite queue files.

Section 4: "Of course, in a practical system spill code will occasionally
be required to deal with finite numbers of queues and queue positions."
This module quantifies that occasionally: given the hardware budget
(queues per location, positions per queue -- Fig. 7), it allocates
greedily under the budget and reports which lifetimes would have to be
spilled through memory instead.

A spilled lifetime costs a store and a load (its value makes a round trip
through memory); :func:`spill_cost_cycles` estimates the extra latency a
naive spill would add so experiments can report the performance price of
smaller queue files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.ir.operations import Opcode

from .lifetimes import Lifetime, Location, LocationKind, required_positions
from .queues import q_compatible


@dataclass
class SpillReport:
    """Outcome of budget-constrained allocation for one location."""

    location: Location
    ii: int
    max_queues: int
    max_positions: int
    queues: list[list[Lifetime]] = field(default_factory=list)
    spilled: list[Lifetime] = field(default_factory=list)

    @property
    def n_spilled(self) -> int:
        return len(self.spilled)

    @property
    def n_queues(self) -> int:
        return len(self.queues)

    @property
    def fits(self) -> bool:
        return not self.spilled


def allocate_with_budget(lifetimes: Iterable[Lifetime], ii: int, *,
                         max_queues: int, max_positions: int,
                         location: Optional[Location] = None
                         ) -> SpillReport:
    """First-fit allocation under a hardware budget.

    A lifetime joins the first queue where (a) it is Q-compatible with
    every resident and (b) the queue's required positions stay within
    *max_positions*; when no queue admits it and all *max_queues* are
    open, the lifetime is spilled.  Long lifetimes are considered first
    (they are the hardest to place and the cheapest to spill per cycle
    covered).
    """
    if max_queues < 0 or max_positions < 1:
        raise ValueError("budget must be non-negative / positive")
    loc = location or Location(LocationKind.PRIVATE, 0)
    report = SpillReport(location=loc, ii=ii, max_queues=max_queues,
                         max_positions=max_positions)
    ordered = sorted(
        lifetimes,
        key=lambda lt: (lt.start, lt.length, lt.producer, lt.consumer,
                        lt.edge_key))
    for lt in ordered:
        placed = False
        for q in report.queues:
            if all(q_compatible(lt, other, ii) for other in q) and \
                    required_positions(q + [lt], ii) <= max_positions:
                q.append(lt)
                placed = True
                break
        if not placed and len(report.queues) < max_queues:
            if required_positions([lt], ii) <= max_positions:
                report.queues.append([lt])
                placed = True
        if not placed:
            report.spilled.append(lt)
    return report


def spill_cost_cycles(report: SpillReport) -> int:
    """Crude extra-latency estimate of the spills: each spilled value
    makes a store + load round trip through memory."""
    per_spill = (Opcode.STORE.default_latency
                 + Opcode.LOAD.default_latency)
    return report.n_spilled * per_spill


def spill_summary(reports: Iterable[SpillReport]) -> tuple[int, int]:
    """(total lifetimes spilled, total queues used) across locations."""
    spilled = queues = 0
    for rep in reports:
        spilled += rep.n_spilled
        queues += rep.n_queues
    return spilled, queues

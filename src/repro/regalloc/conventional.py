"""Conventional register-file requirements (the Section 2 baseline).

With a conventional multi-ported RF (Fig. 1b) a value is written once and
stays in its register until the last of its reads.  In a modulo schedule
several iterations are in flight, so instances of the same value need
distinct registers; the classic measure (Llosa et al. [14], Rau) is
**MaxLive** -- the peak number of simultaneously live values in steady
state -- which a rotating register file achieves exactly and ordinary
allocation approaches within a small factor.

Also exposed: the wide-RF *port* requirement (2 reads + 1 write per FU),
the quantity that motivates clustering in Section 4 ("a 12 FUs machine ...
would demand a 36 port register file, an unrealistic design").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .lifetimes import merged_value_lifetimes, max_live, \
    steady_state_occupancy

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine
    from repro.sched.schedule import ModuloSchedule


@dataclass(frozen=True)
class RegisterFileReport:
    """Register and port demand of a schedule on a conventional RF."""

    max_live: int
    occupancy: tuple[int, ...]  # per modulo phase
    n_values: int               # values written per iteration

    @property
    def mean_live(self) -> float:
        if not self.occupancy:
            return 0.0
        return sum(self.occupancy) / len(self.occupancy)


def register_requirement(sched: "ModuloSchedule") -> RegisterFileReport:
    """MaxLive and per-phase occupancy for a schedule."""
    lifetimes = merged_value_lifetimes(sched)
    occ = steady_state_occupancy(lifetimes, sched.ii)
    return RegisterFileReport(
        max_live=max(occ, default=0),
        occupancy=tuple(occ),
        n_values=len(lifetimes),
    )


def port_requirement(machine: "Machine", *, reads_per_fu: int = 2,
                     writes_per_fu: int = 1) -> int:
    """Ports a monolithic RF would need for this machine's FUs.

    The paper's headline example: 12 FUs x (2R + 1W) = 36 ports.
    """
    return machine.fus.n_total * (reads_per_fu + writes_per_fu)

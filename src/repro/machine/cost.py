"""Register-file complexity model (the paper's ongoing-work item).

Section 4 motivates clustering with a port-count argument: "a 12 FUs
machine requiring 2 read and 1 write ports for each FU would demand a 36
port register file, an unrealistic design".  This module turns that
argument into numbers using the standard VLSI scaling rules the
early-RF-complexity literature used (Rixner et al. later formalised the
same model):

* a multi-ported RF cell grows quadratically with ports (each port adds a
  word line and a bit line): ``area ~ registers * (p_r + p_w)^2``;
* access time grows roughly linearly with ports (longer lines):
  ``delay ~ 1 + k * (p_r + p_w)``;
* a FIFO queue needs one read and one write port *regardless of how many
  FUs the cluster has* -- queues are single-ported by construction, so a
  QRF of Q queues x D positions costs ``Q * D * (1+1)^2`` cell units plus
  head/tail pointer logic.

Absolute units are arbitrary; the *ratios* between organisations at equal
storage capacity are the model's output (experiment S2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import ClusteredMachine
    from .machine import Machine

#: delay growth per port (normalised; only ratios matter)
DELAY_PER_PORT = 0.1


@dataclass(frozen=True)
class RfCost:
    """Area/delay estimate of one register-file organisation."""

    organisation: str
    storage_cells: int       # registers (or queue positions) provided
    ports: int               # total access ports of the structure
    area: float              # cell-area units
    relative_delay: float    # 1.0 == single-ported cell

    def render(self) -> str:
        return (f"{self.organisation:<28} {self.storage_cells:>6} cells  "
                f"{self.ports:>3} ports  area {self.area:>10.0f}  "
                f"delay x{self.relative_delay:.2f}")


def _cell_area(n_cells: int, ports: int) -> float:
    return n_cells * ports ** 2


def _delay(ports: int) -> float:
    return 1.0 + DELAY_PER_PORT * ports


def monolithic_rf_cost(machine: "Machine", registers: int, *,
                       reads_per_fu: int = 2,
                       writes_per_fu: int = 1) -> RfCost:
    """A single RF feeding every FU (the paper's 'unrealistic design')."""
    ports = machine.fus.n_total * (reads_per_fu + writes_per_fu)
    return RfCost(
        organisation=f"monolithic RF ({machine.name})",
        storage_cells=registers,
        ports=ports,
        area=_cell_area(registers, ports),
        relative_delay=_delay(ports),
    )


def qrf_cost(n_queues: int, positions: int, *,
             label: str = "queue RF") -> RfCost:
    """A bank of single-ported FIFO queues.

    Each queue is an independent 2-port structure (1R + 1W); total area is
    the sum over queues, total ports reported for comparison.  Delay is
    the per-queue delay -- queues do not share lines, so it does not grow
    with the bank size (the crux of the scalability argument).
    """
    ports_per_queue = 2
    return RfCost(
        organisation=label,
        storage_cells=n_queues * positions,
        ports=n_queues * ports_per_queue,
        area=n_queues * _cell_area(positions, ports_per_queue),
        relative_delay=_delay(ports_per_queue),
    )


def clustered_qrf_cost(cm: "ClusteredMachine") -> RfCost:
    """The paper's Fig. 7 cluster: 8 private + 8+8 ring queues per
    cluster, each with ``positions`` slots."""
    qb = cm.queue_budget
    queues_per_cluster = qb.private + qb.ring_out_cw + qb.ring_out_ccw
    total_queues = queues_per_cluster * cm.n_clusters
    cost = qrf_cost(total_queues, qb.positions,
                    label=f"clustered QRF ({cm.name})")
    return cost


def cost_comparison(machine: "Machine", cm: "ClusteredMachine",
                    registers: int) -> list[RfCost]:
    """The S2 table: monolithic CRF vs flat QRF vs clustered QRF at the
    same machine width."""
    flat_queues = (cm.queue_budget.private + cm.queue_budget.ring_out_cw
                   + cm.queue_budget.ring_out_ccw) * cm.n_clusters
    return [
        monolithic_rf_cost(machine, registers),
        qrf_cost(flat_queues, cm.queue_budget.positions,
                 label=f"flat QRF ({flat_queues} queues)"),
        clustered_qrf_cost(cm),
    ]

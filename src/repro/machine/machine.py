"""Single-cluster machine descriptions.

A :class:`Machine` is one issue-coupled VLIW cluster: a set of functional
units sharing one register file.  ``rf_kind`` selects the paper's queue
register file (QRF) or a conventional multi-ported register file (the
baseline of Section 2, Fig. 1b): conventional machines need no copy ops and
no copy units; queue machines destroy values on read and therefore need
both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.ddg import Ddg
from repro.ir.operations import FuType, LatencyModel

from .resources import COMPUTE_POOLS, FuSet


class RfKind(enum.Enum):
    """Register-file organisation."""

    CONVENTIONAL = "conventional"
    QUEUE = "queue"


@dataclass(frozen=True)
class QueueBudget:
    """Hardware queue budget of one cluster (Fig. 7).

    ``private`` queues hold intra-cluster lifetimes; ``ring_out_cw`` /
    ``ring_out_ccw`` are the queue sets a cluster writes towards its
    clockwise / counter-clockwise neighbour.  ``positions`` is the depth of
    every queue (slots per queue); the paper leaves it unspecified and
    reports required positions empirically, so the default is generous and
    the allocator *measures* requirements instead of failing.
    """

    private: int = 8
    ring_out_cw: int = 8
    ring_out_ccw: int = 8
    positions: int = 16

    def __post_init__(self) -> None:
        if min(self.private, self.ring_out_cw, self.ring_out_ccw,
               self.positions) < 0:
            raise ValueError("queue budget entries must be >= 0")


@dataclass(frozen=True)
class Machine:
    """One VLIW cluster (or a whole single-cluster machine)."""

    name: str
    fus: FuSet
    rf_kind: RfKind = RfKind.QUEUE
    latencies: LatencyModel = field(default_factory=LatencyModel)
    queue_budget: QueueBudget = field(default_factory=QueueBudget)

    def __post_init__(self) -> None:
        if self.fus.n_compute < 1:
            raise ValueError("a machine needs at least one compute FU")
        if self.rf_kind is RfKind.QUEUE and self.fus.capacity(FuType.COPY) < 1:
            raise ValueError(
                "a QRF machine needs at least one copy unit "
                "(values with fan-out > 1 cannot be stored otherwise)")

    # ----------------------------------------------------------- capacity

    def capacity(self, fu_type: FuType) -> int:
        return self.fus.capacity(fu_type)

    @property
    def n_fus(self) -> int:
        """FU count the way the paper counts (compute units only)."""
        return self.fus.n_compute

    @property
    def has_queues(self) -> bool:
        return self.rf_kind is RfKind.QUEUE

    @property
    def needs_copies(self) -> bool:
        """Whether fan-out > 1 values require copy insertion."""
        return self.has_queues

    def can_execute(self, ddg: Ddg) -> bool:
        """True if every FU class the loop needs exists on this machine."""
        return all(self.capacity(t) >= 1 for t, n in ddg.fu_demand().items()
                   if n > 0)

    def compute_mix(self) -> dict[FuType, int]:
        return {t: self.fus.counts.get(t, 0) for t in COMPUTE_POOLS}

    def retime(self, ddg: Ddg) -> Ddg:
        """Apply this machine's latency model to a loop.

        Memoised on the source DDG's structural cache, keyed by the
        override table: a sweep that schedules one loop on several
        machines sharing a latency model re-times (and re-lowers) it
        once.  The memoised graph is consumed read-only by the
        schedulers, like every post-front-end DDG.
        """
        if not self.latencies.overrides:
            return ddg
        key = ("retimed", tuple(sorted(
            (op.mnemonic, lat)
            for op, lat in self.latencies.overrides.items())))
        cached = ddg._edge_cache.get(key)
        if cached is None:
            cached = ddg.retimed(self.latencies)
            ddg._edge_cache[key] = cached
        return cached

    def describe(self) -> str:
        return (f"{self.name}: {self.fus.describe()}, "
                f"rf={self.rf_kind.value}")

    def renamed(self, name: str) -> "Machine":
        from dataclasses import replace
        return replace(self, name=name)


def balanced_fu_mix(n_fus: int) -> dict[FuType, int]:
    """Distribute *n_fus* compute units over L/S, ADD, MUL.

    The paper only ever names multiples of 3 (its cluster is 1+1+1); for
    the 4..18-FU sweep of Figs. 8-9 we distribute round-robin in the order
    L/S, ADD, MUL so that e.g. 4 FUs = 2/1/1 and 5 FUs = 2/2/1 (memory
    pressure first, matching scientific-loop op mixes).  Deviation #3 in
    DESIGN.md.
    """
    if n_fus < 1:
        raise ValueError("n_fus must be >= 1")
    order = (FuType.LS, FuType.ADD, FuType.MUL)
    counts = {t: n_fus // 3 for t in order}
    for i in range(n_fus % 3):
        counts[order[i]] += 1
    return counts


def copy_units_for(n_fus: int) -> int:
    """Copy units paired with *n_fus* compute units: one per 3-FU group
    (mirrors the cluster organisation; deviation #5 in DESIGN.md)."""
    return max(1, -(-n_fus // 3))


def make_machine(n_fus: int, *, rf_kind: RfKind = RfKind.QUEUE,
                 name: Optional[str] = None,
                 latencies: Optional[LatencyModel] = None,
                 queue_budget: Optional[QueueBudget] = None) -> Machine:
    """Build a single-cluster machine with a balanced FU mix."""
    counts: dict[FuType, int] = dict(balanced_fu_mix(n_fus))
    if rf_kind is RfKind.QUEUE:
        counts[FuType.COPY] = copy_units_for(n_fus)
    label = name or f"{rf_kind.value[:4]}-{n_fus}fu"
    return Machine(
        name=label,
        fus=FuSet(counts),
        rf_kind=rf_kind,
        latencies=latencies or LatencyModel(),
        queue_budget=queue_budget or QueueBudget(),
    )

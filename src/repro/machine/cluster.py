"""Clustered VLIW machines with a bidirectional ring of queues (Section 4).

A :class:`ClusteredMachine` is ``n_clusters`` identical clusters (Fig. 5a)
whose inter-cluster communication happens through queue sets arranged as a
bidirectional ring (Fig. 5b): cluster *i* owns one private queue set and one
outgoing queue set in each ring direction.  A value produced in cluster *i*
may be consumed in cluster *i* (private queues) or in an adjacent cluster
``i ± 1 (mod n)`` (ring queues); the paper's partitioner supports nothing
further ("we do not as yet consider the introduction of operations to
transfer a value between indirectly connected clusters"), which is exactly
what limits its 6-cluster results.  Setting ``allow_moves=True`` enables the
future-work MOVE extension evaluated in ablation A3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.ir.operations import FuType, LatencyModel

from .machine import Machine, QueueBudget, RfKind
from .resources import PAPER_CLUSTER_FUS, FuSet


@dataclass(frozen=True)
class ClusteredMachine:
    """A ring of identical VLIW clusters."""

    name: str
    cluster: Machine
    n_clusters: int
    allow_moves: bool = False
    #: extra cycles for a value crossing to an adjacent cluster.  The paper
    #: treats ring queues exactly like private queues (a producer writes
    #: directly into the ring queue), i.e. zero extra latency; kept
    #: configurable for sensitivity studies.
    inter_cluster_latency: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError("need at least one cluster")
        if self.inter_cluster_latency < 0:
            raise ValueError("inter_cluster_latency must be >= 0")
        if not self.cluster.has_queues:
            raise ValueError("clustered machines are QRF machines")

    # ------------------------------------------------------------ topology

    def ring_distance(self, a: int, b: int) -> int:
        """Hop count between clusters *a* and *b* on the ring."""
        self._check(a), self._check(b)
        d = (a - b) % self.n_clusters
        return min(d, self.n_clusters - d)

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether a value can flow directly from *a* to *b* (<= 1 hop)."""
        return self.ring_distance(a, b) <= 1

    def neighbours(self, c: int) -> list[int]:
        """Clusters reachable in one hop (excluding *c* itself)."""
        self._check(c)
        if self.n_clusters == 1:
            return []
        if self.n_clusters == 2:
            return [1 - c]
        return sorted({(c - 1) % self.n_clusters, (c + 1) % self.n_clusters})

    def reachable(self, c: int) -> list[int]:
        """Clusters a value produced in *c* may be consumed in."""
        return sorted(set(self.neighbours(c)) | {c})

    def hop_path(self, a: int, b: int) -> list[int]:
        """Shortest ring path ``a .. b`` (inclusive); ties go clockwise."""
        self._check(a), self._check(b)
        n = self.n_clusters
        cw = (b - a) % n
        ccw = (a - b) % n
        step = 1 if cw <= ccw else -1
        path = [a]
        cur = a
        while cur != b:
            cur = (cur + step) % n
            path.append(cur)
        return path

    def clusters(self) -> Iterator[int]:
        return iter(range(self.n_clusters))

    def _check(self, c: int) -> None:
        if not 0 <= c < self.n_clusters:
            raise IndexError(f"cluster {c} out of range "
                             f"[0, {self.n_clusters})")

    # ------------------------------------------------------------ capacity

    def capacity(self, fu_type: FuType) -> int:
        """Machine-wide units of a class (used by ResMII)."""
        return self.cluster.capacity(fu_type) * self.n_clusters

    def cluster_capacity(self, fu_type: FuType) -> int:
        return self.cluster.capacity(fu_type)

    @property
    def n_fus(self) -> int:
        """Compute FUs machine-wide, as the paper counts (12/15/18)."""
        return self.cluster.n_fus * self.n_clusters

    @property
    def has_queues(self) -> bool:
        return True

    @property
    def needs_copies(self) -> bool:
        return True

    @property
    def queue_budget(self) -> QueueBudget:
        return self.cluster.queue_budget

    @property
    def latencies(self) -> LatencyModel:
        return self.cluster.latencies

    def flattened(self) -> Machine:
        """The equivalent single-cluster machine (the paper's baseline for
        Fig. 6: same total FUs, no partitioning constraints)."""
        return Machine(
            name=f"{self.name}-flat",
            fus=self.cluster.fus.scaled(self.n_clusters),
            rf_kind=RfKind.QUEUE,
            latencies=self.cluster.latencies,
            queue_budget=self.cluster.queue_budget,
        )

    def with_moves(self, allow: bool = True) -> "ClusteredMachine":
        return replace(self, allow_moves=allow)

    def describe(self) -> str:
        return (f"{self.name}: {self.n_clusters} clusters x "
                f"[{self.cluster.fus.describe()}], ring, "
                f"moves={'on' if self.allow_moves else 'off'}")


def make_clustered(n_clusters: int, *,
                   cluster_fus: Optional[FuSet] = None,
                   name: Optional[str] = None,
                   allow_moves: bool = False,
                   latencies: Optional[LatencyModel] = None,
                   queue_budget: Optional[QueueBudget] = None,
                   inter_cluster_latency: int = 0) -> ClusteredMachine:
    """Build the paper's clustered machine: *n_clusters* x (L/S+ADD+MUL+copy)."""
    cluster = Machine(
        name="cluster",
        fus=cluster_fus or PAPER_CLUSTER_FUS,
        rf_kind=RfKind.QUEUE,
        latencies=latencies or LatencyModel(),
        queue_budget=queue_budget or QueueBudget(),
    )
    label = name or f"ring-{n_clusters}x{cluster.n_fus}fu"
    return ClusteredMachine(
        name=label, cluster=cluster, n_clusters=n_clusters,
        allow_moves=allow_moves,
        inter_cluster_latency=inter_cluster_latency,
    )

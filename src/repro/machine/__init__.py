"""Machine models: single-cluster VLIWs and ring-clustered machines."""

from .cluster import ClusteredMachine, make_clustered
from .cost import (RfCost, clustered_qrf_cost, cost_comparison,
                   monolithic_rf_cost, qrf_cost)
from .machine import (Machine, QueueBudget, RfKind, balanced_fu_mix,
                      copy_units_for, make_machine)
from .presets import (IPC_SWEEP_FUS, PAPER_CLUSTER_COUNTS, PAPER_FU_SIZES,
                      clustered_machine, crf_machine, ipc_clustered_points,
                      ipc_sweep_machines, narrow_test_machine,
                      paper_clustered_machines, paper_qrf_machines,
                      qrf_machine, single_cluster_equivalent)
from .resources import (COMPUTE_POOLS, HARDWARE_POOLS, PAPER_CLUSTER_FUS,
                        SERVICE_MAP, FuSet, pool_for)

__all__ = [
    "ClusteredMachine", "make_clustered",
    "RfCost", "clustered_qrf_cost", "cost_comparison",
    "monolithic_rf_cost", "qrf_cost",
    "Machine", "QueueBudget", "RfKind", "balanced_fu_mix",
    "copy_units_for", "make_machine",
    "IPC_SWEEP_FUS", "PAPER_CLUSTER_COUNTS", "PAPER_FU_SIZES",
    "clustered_machine", "crf_machine", "ipc_clustered_points",
    "ipc_sweep_machines", "narrow_test_machine",
    "paper_clustered_machines", "paper_qrf_machines", "qrf_machine",
    "single_cluster_equivalent",
    "COMPUTE_POOLS", "HARDWARE_POOLS", "PAPER_CLUSTER_FUS", "SERVICE_MAP",
    "FuSet", "pool_for",
]

"""The paper's machine configurations, ready-made.

Section 2 evaluates QRF machines of 4, 6 and 12 FUs; Section 4 evaluates
clustered machines of 4, 5 and 6 clusters (12, 15, 18 FUs) against their
single-cluster equivalents; Figs. 8-9 sweep 4..18 FUs.
"""

from __future__ import annotations

from repro.ir.operations import FuType

from .cluster import ClusteredMachine, make_clustered
from .machine import Machine, RfKind, make_machine
from .resources import FuSet

#: FU widths used in Section 2 / Section 3 experiments.
PAPER_FU_SIZES = (4, 6, 12)

#: Cluster counts used in Section 4 (Fig. 6).
PAPER_CLUSTER_COUNTS = (4, 5, 6)

#: The x-axis of Figs. 8-9.
IPC_SWEEP_FUS = tuple(range(4, 19))


def qrf_machine(n_fus: int) -> Machine:
    """Single-cluster QRF machine (copy units included)."""
    return make_machine(n_fus, rf_kind=RfKind.QUEUE)


def crf_machine(n_fus: int) -> Machine:
    """Single-cluster conventional-RF machine (Section 2 baseline)."""
    return make_machine(n_fus, rf_kind=RfKind.CONVENTIONAL)


def paper_qrf_machines() -> list[Machine]:
    """The 4/6/12-FU QRF machines of Sections 2-3."""
    return [qrf_machine(n) for n in PAPER_FU_SIZES]


def clustered_machine(n_clusters: int, *,
                      allow_moves: bool = False) -> ClusteredMachine:
    """The paper's ring machine: n x (1 L/S + 1 ADD + 1 MUL + 1 copy)."""
    return make_clustered(n_clusters, allow_moves=allow_moves)


def paper_clustered_machines() -> list[ClusteredMachine]:
    """The 4/5/6-cluster machines of Section 4."""
    return [clustered_machine(n) for n in PAPER_CLUSTER_COUNTS]


def single_cluster_equivalent(cm: ClusteredMachine) -> Machine:
    """Single-cluster machine with the same total FUs (Fig. 6 baseline)."""
    return cm.flattened()


def ipc_sweep_machines() -> list[Machine]:
    """Single-cluster QRF machines for the 4..18-FU sweep of Figs. 8-9."""
    return [qrf_machine(n) for n in IPC_SWEEP_FUS]


def ipc_clustered_points() -> dict[int, ClusteredMachine]:
    """The clustered points (12/15/18 FUs) overlaid in Figs. 8-9."""
    return {cm.n_fus: cm for cm in paper_clustered_machines()}


def narrow_test_machine() -> Machine:
    """A deliberately tiny machine (1 of each FU) for unit tests."""
    return Machine(
        name="tiny",
        fus=FuSet({FuType.LS: 1, FuType.ADD: 1, FuType.MUL: 1,
                   FuType.COPY: 1}),
        rf_kind=RfKind.QUEUE,
    )

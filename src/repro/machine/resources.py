"""Functional-unit resources.

The scheduler models FUs as fully pipelined (one issue per cycle per unit,
the standard assumption of Rau's IMS evaluations): an operation reserves its
unit for exactly the issue cycle.  Each FU belongs to a *pool* identified by
:class:`~repro.ir.operations.FuType`; some opcodes are *served by* a pool of
a different type (MOVE ops execute on the copy unit, which can trivially
read one queue and write one).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from functools import cached_property
from typing import Mapping

from repro.ir.operations import FuType

#: Which FU pool executes ops of a given type.  MOVE has no dedicated
#: hardware: the copy unit performs it (1 read, 1 write is a subset of the
#: copy unit's 1 read, 2 writes).
SERVICE_MAP: dict[FuType, FuType] = {
    FuType.LS: FuType.LS,
    FuType.ADD: FuType.ADD,
    FuType.MUL: FuType.MUL,
    FuType.COPY: FuType.COPY,
    FuType.MOVE: FuType.COPY,
}

#: FU pools that hold actual hardware (MOVE is virtual).
HARDWARE_POOLS = (FuType.LS, FuType.ADD, FuType.MUL, FuType.COPY)

#: Dense integer id per hardware pool -- the packed-array scheduling core
#: (``repro.ir.ddgarrays``, ``repro.sched.mrt.PackedMRT``) indexes flat
#: vectors by these instead of hashing enum members in hot loops.
POOL_IDS: dict[FuType, int] = {p: i for i, p in enumerate(HARDWARE_POOLS)}

#: Number of hardware pools (length of every per-pool packed vector).
N_POOLS = len(HARDWARE_POOLS)

#: Integer pool id serving ops of a given FU type (``SERVICE_MAP`` then
#: ``POOL_IDS``), precomputed for every FuType.
POOL_ID_FOR: dict[FuType, int] = {
    t: POOL_IDS[p] for t, p in SERVICE_MAP.items()}

#: Pools counted as "FUs" when the paper says "a 12 FUs machine" -- copy
#: units are always reported separately ("plus the required FUs to support
#: copy operations", Section 4).
COMPUTE_POOLS = (FuType.LS, FuType.ADD, FuType.MUL)


def pool_for(fu_type: FuType) -> FuType:
    """Resolve the hardware pool serving ops of *fu_type*."""
    return SERVICE_MAP[fu_type]


@dataclass(frozen=True)
class FuSet:
    """An immutable multiset of functional units.

    ``counts`` maps each hardware pool to the number of units.  Missing
    pools count zero.
    """

    counts: Mapping[FuType, int]

    def __post_init__(self) -> None:
        for fu_type, n in self.counts.items():
            if fu_type not in HARDWARE_POOLS:
                raise ValueError(f"{fu_type} is not a hardware pool")
            if n < 0:
                raise ValueError("negative FU count")

    def capacity(self, fu_type: FuType) -> int:
        """Units available to ops of *fu_type* (after pool mapping)."""
        return self.counts.get(pool_for(fu_type), 0)

    @property
    def n_compute(self) -> int:
        """FU count as the paper reports it (L/S + ADD + MUL)."""
        return sum(self.counts.get(t, 0) for t in COMPUTE_POOLS)

    @property
    def n_total(self) -> int:
        return sum(self.counts.values())

    def merged(self, other: "FuSet") -> "FuSet":
        out = dict(self.counts)
        for fu_type, n in other.counts.items():
            out[fu_type] = out.get(fu_type, 0) + n
        return FuSet(out)

    def scaled(self, k: int) -> "FuSet":
        if k < 0:
            raise ValueError("scale must be >= 0")
        return FuSet({t: n * k for t, n in self.counts.items()})

    def describe(self) -> str:
        parts = [f"{n}x{t.value}"
                 for t, n in sorted(self.counts.items(), key=lambda kv: kv[0].name)
                 if n]
        return "+".join(parts) or "empty"

    def as_dict(self) -> dict[FuType, int]:
        return dict(self.counts)

    @cached_property
    def pool_caps(self) -> "array":
        """Packed per-pool capacity vector (indexed by
        :data:`POOL_IDS`), cached on the (immutable) FU set.  This is
        the form :class:`repro.sched.mrt.PackedMRT` and the schedule
        audit consume; handing them the cached array skips the
        dict-to-array conversion on every reservation-table reset."""
        caps = [0] * N_POOLS
        for pool, n in self.counts.items():
            if n > 0:
                caps[POOL_IDS[pool]] = n
        return array("i", caps)


#: The paper's basic cluster datapath (Fig. 5a / Fig. 7): one L/S, one
#: adder, one multiplier, one copy unit.
PAPER_CLUSTER_FUS = FuSet({
    FuType.LS: 1, FuType.ADD: 1, FuType.MUL: 1, FuType.COPY: 1,
})

"""Perf telemetry: ``BENCH_<name>.json`` records and baseline gating.

Every benchmark emits one JSON record at the repo root (override the
directory with ``REPRO_BENCH_DIR``) carrying its wall time, corpus size
and a few headline metrics.  The records are the repo's performance
trajectory: CI uploads them as artifacts, EXPERIMENTS.md quotes them, and
the ``perf-smoke`` job gates merges by comparing them against the
checked-in ``benchmarks/baseline.json``.

Command line::

    python benchmarks/telemetry.py check  --baseline benchmarks/baseline.json BENCH_*.json
    python benchmarks/telemetry.py update --baseline benchmarks/baseline.json BENCH_*.json

``check`` exits non-zero when any record's wall time exceeds its baseline
by more than the tolerance factor (default 1.3x; override per call with
``--tolerance`` or per entry with a ``"tolerance"`` key in the baseline).
Records without a baseline entry are reported but never fail the check,
so adding a benchmark does not require touching the baseline in the same
change.  ``update`` rewrites the baseline entries from the given records
(keeping unknown entries), for refreshing after an intentional change.
"""

from __future__ import annotations

import argparse
import datetime
import hashlib
import json
import os
import pathlib
import platform
import socket
import subprocess
import sys
from typing import Iterable, Optional

#: Schema 2 adds the ``provenance`` block (git sha, hostname
#: fingerprint, python version); schema-1 records stay readable --
#: every consumer treats provenance as optional.
SCHEMA_VERSION = 2
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / "baseline.json"
DEFAULT_TOLERANCE = 1.3


def bench_dir() -> pathlib.Path:
    """Where ``BENCH_<name>.json`` records land (repo root by default)."""
    return pathlib.Path(os.environ.get("REPRO_BENCH_DIR", REPO_ROOT))


_PROVENANCE: Optional[dict] = None


def _git_sha() -> str:
    sha = os.environ.get("REPRO_GIT_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def provenance() -> dict:
    """Where a record came from: git sha, host fingerprint, python.

    The hostname is fingerprinted (truncated SHA-256), not recorded
    raw -- records are committed and uploaded as CI artifacts, and the
    trajectory only needs to distinguish machines, not name them.
    Memoised per process (the git subprocess is not free).
    """
    global _PROVENANCE
    if _PROVENANCE is None:
        host = hashlib.sha256(
            socket.gethostname().encode("utf-8", "replace")).hexdigest()
        try:
            # the backend changes wall time, never results -- record it so
            # the perf trajectory can be grouped per backend
            from repro.kernels import active_name
            kernels = active_name()
        except Exception:  # telemetry.py also runs standalone (check/update)
            kernels = "unknown"
        _PROVENANCE = {
            "git_sha": _git_sha(),
            "host": host[:12],
            "python": platform.python_version(),
            "kernels": kernels,
        }
    return dict(_PROVENANCE)


def write_bench_json(name: str, wall_s: float, *,
                     corpus_size: Optional[int] = None,
                     metrics: Optional[dict] = None) -> pathlib.Path:
    """Persist one benchmark's telemetry record; returns the path."""
    record = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "wall_s": round(float(wall_s), 4),
        "corpus_size": corpus_size,
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "provenance": provenance(),
        "metrics": metrics or {},
    }
    out = bench_dir() / f"BENCH_{name}.json"
    tmp = out.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    tmp.replace(out)
    return out


def read_bench(path: "pathlib.Path | str") -> dict:
    return json.loads(pathlib.Path(path).read_text())


def load_baseline(path: "pathlib.Path | str") -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if "benches" not in data:
        raise ValueError(f"{path}: baseline must carry a 'benches' map")
    return data


def check_against_baseline(
        record_paths: Iterable["pathlib.Path | str"],
        baseline: dict, *,
        tolerance: float = DEFAULT_TOLERANCE,
        total_budget_ratio: Optional[float] = None,
        ) -> tuple[list[str], list[str]]:
    """Compare records to the baseline; returns ``(report, failures)``.

    A record fails when ``wall_s > baseline_wall * tolerance``; the
    per-entry ``"tolerance"`` key overrides the global factor.  With
    *total_budget_ratio* set, the *combined* wall clock of every record
    that has a baseline entry is additionally held to
    ``sum(baselines) * ratio`` -- the CI wall-clock budget: individually
    tolerable creep across several benchmarks still fails the job.
    """
    report: list[str] = []
    failures: list[str] = []
    benches = baseline["benches"]
    total_wall = total_base = 0.0
    for path in sorted(map(str, record_paths)):
        rec = read_bench(path)
        name, wall = rec["name"], rec["wall_s"]
        entry = benches.get(name)
        if entry is None:
            report.append(f"  {name}: {wall:.2f}s (no baseline entry)")
            continue
        base = float(entry["wall_s"])
        total_wall += wall
        total_base += base
        tol = float(entry.get("tolerance", tolerance))
        limit = base * tol
        verdict = "ok" if wall <= limit else "REGRESSION"
        line = (f"  {name}: {wall:.2f}s vs baseline {base:.2f}s "
                f"(limit {limit:.2f}s = {tol:.2f}x) -- {verdict}")
        report.append(line)
        if wall > limit:
            failures.append(line.strip())
    if total_budget_ratio is not None and total_base > 0.0:
        budget = total_base * total_budget_ratio
        verdict = "ok" if total_wall <= budget else "REGRESSION"
        line = (f"  TOTAL: {total_wall:.2f}s vs budget {budget:.2f}s "
                f"({total_budget_ratio:.2f}x of {total_base:.2f}s "
                f"combined baseline) -- {verdict}")
        report.append(line)
        if total_wall > budget:
            failures.append(line.strip())
    return report, failures


def update_baseline(record_paths: Iterable["pathlib.Path | str"],
                    baseline_path: "pathlib.Path | str") -> dict:
    """Fold the given records' wall times into the baseline file."""
    path = pathlib.Path(baseline_path)
    data = (load_baseline(path) if path.exists()
            else {"schema": SCHEMA_VERSION, "benches": {}})
    for rp in record_paths:
        rec = read_bench(rp)
        entry = data["benches"].setdefault(rec["name"], {})
        entry["wall_s"] = rec["wall_s"]
    path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    return data


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)
    for cmd in ("check", "update"):
        p = sub.add_parser(cmd)
        p.add_argument("records", nargs="+",
                       help="BENCH_<name>.json files to process")
        p.add_argument("--baseline", default=str(DEFAULT_BASELINE))
        if cmd == "check":
            p.add_argument("--tolerance", type=float,
                           default=DEFAULT_TOLERANCE)
            p.add_argument("--total-budget-ratio", type=float,
                           default=None,
                           help="also fail when the combined wall clock "
                                "of all baselined records exceeds this "
                                "factor of the combined baseline")
    args = parser.parse_args(argv)

    if args.cmd == "update":
        update_baseline(args.records, args.baseline)
        print(f"baseline {args.baseline} updated from "
              f"{len(args.records)} record(s)")
        return 0

    baseline = load_baseline(args.baseline)
    report, failures = check_against_baseline(
        args.records, baseline, tolerance=args.tolerance,
        total_budget_ratio=args.total_budget_ratio)
    print("perf-smoke comparison:")
    for line in report:
        print(line)
    if failures:
        print(f"\n{len(failures)} perf regression(s) beyond tolerance:",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""PC -- partitioner comparison: every registered engine head to head.

Runs the clustered corpus through each registered cluster-partitioning
engine on the paper's 4/5/6-cluster rings and reports II-vs-MII quality,
search effort (placement attempts, evictions), ring-crossing value count
and peak per-cluster MaxLive.  The shape assertions pin the reasons the
engines exist: the affinity family keeps ring traffic visibly below the
locality-blind baselines, and the agglomerative pre-assignment matches
or beats the greedy default's II quality.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import exp_partitioner_compare
from repro.sched.partitioners import available_partitioners
from repro.workloads.corpus import bench_corpus


def test_partitioner_compare(benchmark):
    loops = bench_corpus(64)
    result = run_recorded(
        benchmark, "partitioner_compare",
        lambda: exp_partitioner_compare(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {
            f"mii_rate_{n}cl_{p}": r.mii_rate[(n, p)]
            for n in r.cluster_counts for p in r.partitioners})
    record("partitioner_compare", result.render())

    engines = set(result.partitioners)
    assert engines == set(available_partitioners())
    assert result.partitioners[0] == "affinity"  # the baseline stays first

    for n in result.cluster_counts:
        for p in result.partitioners:
            key = (n, p)
            # every engine schedules the (schedulable) corpus
            assert result.n_ok[key] > 0
            assert result.n_failed[key] == 0
            # II never beats MII; excess stays small on the bench corpus
            assert result.mean_ii_excess[key] >= 0.0
            assert result.mean_ii_excess[key] <= 3.0
        # locality: affinity-guided engines move fewer values across the
        # ring than the load-only baseline
        assert (result.mean_inter_cluster[(n, "affinity")]
                <= result.mean_inter_cluster[(n, "balance")] + 1e-9)
        assert (result.mean_inter_cluster[(n, "agglomerative")]
                <= result.mean_inter_cluster[(n, "balance")] + 1e-9)

    # the two-phase pre-assignment holds II quality at the hardest ring
    worst = max(result.cluster_counts)
    assert (result.mii_rate[(worst, "agglomerative")]
            >= result.mii_rate[(worst, "affinity")] - 0.05)

"""Shared benchmark helpers.

Every benchmark runs one paper experiment end to end on the bench corpus
(a stratified subsample; set ``REPRO_FULL_CORPUS=1`` for all 1258 loops),
asserts the figure's *shape* invariants, and records the rendered table
under ``benchmarks/results/`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, rendered: str) -> None:
    """Persist a rendered experiment table next to the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    # also echo into the benchmark log
    print(f"\n{rendered}\n")

"""Shared benchmark helpers.

Every benchmark runs one paper experiment end to end on the bench corpus
(a stratified subsample; set ``REPRO_FULL_CORPUS=1`` for all 1258 loops),
asserts the figure's *shape* invariants, and records the rendered table
under ``benchmarks/results/`` so EXPERIMENTS.md can quote it.

Benchmarks execute through the sweep runner; the same knobs the CLI
exposes as ``--jobs``/``--no-cache``/``--cache-dir`` arrive here through
the environment:

* ``REPRO_JOBS=N``      -- worker processes (default 1 = serial),
* ``REPRO_NO_CACHE=1``  -- disable the content-addressed result cache
  (the default here, unlike the CLI: a benchmark that replays cached
  results measures nothing),
* ``REPRO_CACHE_DIR``   -- cache location when caching is enabled.
"""

from __future__ import annotations

import os
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Arena-counter snapshot taken at the previous telemetry record, so a
#: multi-benchmark pytest process reports per-benchmark *deltas* of the
#: monotonic counters instead of the process-cumulative totals.
_ARENA_BASE: dict = {}


def _arena_delta() -> dict:
    """Arena counters accumulated since the last record in this process
    (``pooled_mrts`` is a level, not a counter, and passes through)."""
    from repro.sched import arena_counters

    global _ARENA_BASE
    now = arena_counters()
    delta = {k: now[k] - _ARENA_BASE.get(k, 0)
             for k in ("generation", "resets", "hits", "allocs")}
    delta["pooled_mrts"] = now["pooled_mrts"]
    _ARENA_BASE = now
    return delta

#: Environment knobs mirrored from the CLI's runner flags.
JOBS_ENV = "REPRO_JOBS"
NO_CACHE_ENV = "REPRO_NO_CACHE"


def runner_from_env():
    """Build the benchmarks' :class:`repro.runner.RunnerConfig` from env.

    Returns None (the drivers' serial, uncached default) unless the
    environment asks for workers or caching, so timing runs measure the
    real pipeline by default.
    """
    from repro.runner import ResultCache, RunnerConfig

    n_workers = int(os.environ.get(JOBS_ENV, "1") or "1")
    use_cache = os.environ.get(NO_CACHE_ENV, "1") != "1"
    if n_workers <= 1 and not use_cache:
        return None
    return RunnerConfig(n_workers=n_workers,
                        cache=ResultCache() if use_cache else None)


def record(name: str, rendered: str) -> None:
    """Persist a rendered experiment table next to the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    # also echo into the benchmark log
    print(f"\n{rendered}\n")


def record_bench_json(name: str, wall_s: float, *,
                      corpus_size: int | None = None, **metrics) -> None:
    """Write this run's ``BENCH_<name>.json`` telemetry record (repo
    root; see :mod:`telemetry`) -- wall time, corpus size and headline
    metrics.  Every benchmark calls this so the perf trajectory is never
    empty and CI's perf-smoke job has something to gate on.

    The scheduling-arena counters (buffer hits / allocations / attempt
    resets, see :mod:`repro.sched.arena`) ride along in every record's
    metrics, and ``ARENA_COUNTERS.json`` beside the records keeps one
    entry *per benchmark name* in the same schema-2 envelope as the
    BENCH records (``metrics`` maps bench name to counters;
    read-modify-write, so separate pytest invocations -- how CI's
    perf-smoke job runs -- accumulate instead of clobbering each
    other): the artifact CI uploads so arena effectiveness is
    observable run over run.  The counters are read from *this*
    process's arena (the ``scope`` field says so): under
    ``REPRO_JOBS > 1`` the scheduling happens in pool workers whose
    arenas fork per process, so serial runs -- the perf-smoke default --
    are the meaningful trajectory.

    When tracing is enabled (``REPRO_TRACE=1``), the per-stage span
    aggregate accumulated so far in this process rides along under
    ``metrics["trace"]``, so a traced benchmark run leaves its stage
    breakdown in the committed record."""
    import datetime
    import json

    import telemetry

    from repro.obs.trace import trace_snapshot, tracing_enabled

    counters = dict(_arena_delta(), scope="parent-process")
    extra = {"arena": counters}
    if tracing_enabled():
        snap = trace_snapshot()
        extra["trace"] = {"stages": snap["stages"],
                          "counters": snap["counters"]}
    telemetry.write_bench_json(name, wall_s, corpus_size=corpus_size,
                               metrics={**metrics, **extra})
    snapshot_path = telemetry.bench_dir() / "ARENA_COUNTERS.json"
    try:
        existing = json.loads(snapshot_path.read_text())
        per_bench = existing.get("metrics") if isinstance(existing, dict) \
            else None
        if not isinstance(per_bench, dict):
            per_bench = {}         # schema-1 / flat / corrupt: start over
    except (OSError, ValueError):
        per_bench = {}
    per_bench[name] = counters
    envelope = {
        "schema": telemetry.SCHEMA_VERSION,
        "name": "arena_counters",
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "provenance": telemetry.provenance(),
        "metrics": per_bench,
    }
    snapshot_path.write_text(
        json.dumps(envelope, indent=1, sort_keys=True) + "\n")


def run_recorded(benchmark, name: str, fn, *,
                 corpus_size: int | None = None, metrics=None):
    """Run *fn* once under the pytest-benchmark fixture and persist its
    telemetry record.

    ``metrics`` is either a dict or a callable mapping the result to a
    dict (evaluated after the run, so headline numbers come from the
    measured result).  Returns *fn*'s result.
    """
    holder: dict[str, float] = {}

    def timed():
        t0 = time.perf_counter()
        out = fn()
        holder["wall"] = time.perf_counter() - t0
        return out

    result = benchmark.pedantic(timed, rounds=1, iterations=1)
    resolved = metrics(result) if callable(metrics) else (metrics or {})
    record_bench_json(name, holder["wall"], corpus_size=corpus_size,
                      **resolved)
    return result


def record_bench_stats(benchmark, name: str, *,
                       corpus_size: int | None = None, **metrics) -> None:
    """Record the mean round time of a classic (multi-round)
    pytest-benchmark run that already happened on *benchmark*."""
    try:
        wall = float(benchmark.stats.stats.mean)
    except (AttributeError, TypeError):
        return
    record_bench_json(name, wall, corpus_size=corpus_size, **metrics)

"""R3 -- failure domains: recovery cost of a seeded fault storm.

Runs the hand-written kernel suite (x2 machines, x2 option sets: 120
jobs) twice through the parallel runner -- once clean, once under the
chaos suite's seeded fault plan (worker crashes + hangs + torn cache
writes) with a tight watchdog -- and measures what the supervision
layer charges for surviving the storm.

Shape requirements (the DESIGN §5.10 contract): the storm run returns
one result per job in request order, byte-identical to the clean run;
the attempt ledger proves no job executed more than ``1 + retries``
times; and the torn cache replays only whole records.  The recorded
table is what EXPERIMENTS.md quotes for the fault-storm claims.
"""

import os
import tempfile
import time

from conftest import record, record_bench_json

from repro import faults
from repro.machine.presets import qrf_machine
from repro.runner import RunnerConfig, ShardedResultCache, run_jobs, sweep
from repro.runner import pool as pool_mod
from repro.workloads.kernels import all_kernels

N_WORKERS = 2
FAULT_SPEC = ("seed=11;pool.worker=crash:0.05,hang:0.03:0.75;"
              "cache.put=torn:0.2")


def _jobs():
    return sweep(all_kernels(), [qrf_machine(4), qrf_machine(8)],
                 [dict(copies=True, allocate=False),
                  dict(copies=True, allocate=True)])


def test_fault_storm_recovery_cost(benchmark):
    jobs = _jobs()
    pool_mod.close_all_sessions()
    t0 = time.perf_counter()
    clean = run_jobs(jobs, RunnerConfig(n_workers=N_WORKERS))
    t_clean = time.perf_counter() - t0
    pool_mod.close_all_sessions()

    with tempfile.TemporaryDirectory() as tmp:
        ledger = os.path.join(tmp, "attempts.ledger")
        faults.enable_faults(f"{FAULT_SPEC};ledger={ledger}")

        def storm_run():
            cache = ShardedResultCache(os.path.join(tmp, "cache"))
            t0 = time.perf_counter()
            storm = run_jobs(jobs, RunnerConfig(
                n_workers=N_WORKERS, cache=cache,
                job_deadline_s=0.5, max_retries=1))
            return storm, time.perf_counter() - t0

        storm, t_storm = benchmark.pedantic(storm_run, rounds=1,
                                            iterations=1)
        session = pool_mod._SESSIONS.get(N_WORKERS)
        counters = session.counters() if session else {}
        attempts = faults.read_ledger(ledger)
        faults.disable_faults()
        pool_mod.close_all_sessions()

        # correctness under fire: order, parity, bounded attempts
        assert [r.key for r in storm] == [j.key for j in jobs]
        assert storm == clean
        assert max(attempts.values()) <= 2
        # the torn cache replays only whole records
        fresh = ShardedResultCache(os.path.join(tmp, "cache"))
        assert run_jobs(jobs, RunnerConfig(cache=fresh)) == clean

    slowdown = t_storm / max(t_clean, 1e-9)
    lines = [
        "R3 -- failure domains: seeded fault-storm recovery",
        "",
        f"jobs: {len(jobs)}  workers: {N_WORKERS}  plan: {FAULT_SPEC}",
        f"clean run:           {t_clean:8.2f}s",
        f"storm run:           {t_storm:8.2f}s   "
        f"slowdown {slowdown:.2f}x",
        f"worker respawns:     {counters.get('respawns', 0)}",
        f"quarantined jobs:    {counters.get('quarantines', 0)}",
        f"max attempts/job:    {max(attempts.values())} "
        f"(bound: 2 = 1 + retries)",
    ]
    record("fault_storm", "\n".join(lines))
    record_bench_json(
        "fault_storm", t_storm, n_jobs=len(jobs), n_workers=N_WORKERS,
        storm_slowdown=round(slowdown, 2),
        respawns=counters.get("respawns", 0),
        quarantines=counters.get("quarantines", 0),
        max_attempts=max(attempts.values()))

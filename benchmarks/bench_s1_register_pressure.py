"""S1 -- supplementary: register pressure, QRF vs conventional RF.

Quantifies the paper's introduction argument: modulo scheduling keeps
several iterations in flight, so a conventional RF needs either modulo
variable expansion (code growth + extra names) or rotating-register
hardware, while the QRF's FIFO semantics absorb overlapping instances
naturally.  Compares, on the same loops and machine widths: queues used
(QRF side) vs MaxLive / rotating / MVE register counts (CRF side).
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import register_pressure
from repro.workloads.corpus import bench_corpus

SAMPLE = 96


def test_s1_register_pressure(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "s1_register_pressure",
        lambda: register_pressure(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {f"mean_queues_{m}": v
                           for m, v in r.mean_queues.items()})
    record("s1_register_pressure", result.render())

    for name in result.mean_queues:
        # the ordering MaxLive <= rotating <= MVE must hold machine-wide
        assert result.mean_max_live[name] <= \
            result.mean_rotating[name] + 1e-9
        assert result.mean_rotating[name] <= \
            result.mean_mve_regs[name] + 2.0
        # a static RF needs kernel replication; wider machines more so
        assert result.mean_mve_unroll[name] >= 1.0
    names = list(result.mean_queues)
    assert result.mean_mve_unroll[names[-1]] >= \
        result.mean_mve_unroll[names[0]]

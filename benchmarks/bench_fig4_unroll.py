"""E3/E4 -- Fig. 4 + Section 3 text: loop unrolling.

Regenerates the II-speedup bars (fraction of loops with speedup > 1 on the
4/6/12-FU machines) and the Section 3 queue-growth claim (over 90 % of
loops still fit 32 queues after unrolling).  Shape requirements: wider
machines benefit more, and no loop regresses (the compiler keeps the
rolled version when unrolling loses).
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import fig4_unroll_speedup
from repro.workloads.corpus import bench_corpus


def test_fig4_unroll_speedup(benchmark):
    loops = bench_corpus()
    result = run_recorded(
        benchmark, "fig4_unroll",
        lambda: fig4_unroll_speedup(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {f"speedup_gt1_{m}": v
                           for m, v in r.speedup_gt1.items()})
    record("fig4_unroll", result.render())

    names = list(result.speedup_gt1)
    # monotone benefit with machine width (4 -> 6 -> 12 FUs)
    assert result.speedup_gt1[names[0]] <= result.speedup_gt1[names[1]] \
        <= result.speedup_gt1[names[2]] + 0.02
    # the widest machine sees a substantial fraction of winners
    assert result.speedup_gt1[names[2]] >= 0.30
    # unrolling never hurts (fallback keeps the rolled loop)
    for machine in names:
        assert all(s >= 1.0 - 1e-9 for s in result.speedups[machine])
    # Section 3: >= 90% of loops within 32 queues even after unrolling
    for machine in names:
        assert result.queues_le_32[machine] >= 0.9

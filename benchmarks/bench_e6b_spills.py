"""E6b -- spill code under finite queue files.

Section 4: "in a practical system spill code will occasionally be
required to deal with finite numbers of queues and queue positions."
Sweeps hardware budgets (queues x positions) on the 12-FU machine and
reports the spill-free fraction and mean spilled lifetimes -- the
quantified version of the paper's "occasionally".
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import spill_budget
from repro.workloads.corpus import bench_corpus

SAMPLE = 96


def test_e6b_spill_budget(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "e6b_spills",
        lambda: spill_budget(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {
            "no_spill_4x8": r.no_spill_fraction[(4, 8)],
            "no_spill_32x16": r.no_spill_fraction[(32, 16)]})
    record("e6b_spills", result.render())

    frac = result.no_spill_fraction
    # more hardware -> fewer spills, monotonically
    assert frac[(4, 8)] <= frac[(8, 8)] <= frac[(16, 16)] <= frac[(32, 16)]
    # the Fig. 3 claim in spill terms: 32 queues eliminate spilling
    assert frac[(32, 16)] >= 0.99
    # and the mean spill count mirrors it
    assert result.mean_spills[(32, 16)] <= result.mean_spills[(4, 8)]

"""R1 -- sweep runner: parallel speedup and cache-hit replay time.

Runs the Fig. 3 grid (bench corpus x 4/6/12-FU machines) three ways:

1. serial, no cache        -- the historical baseline,
2. parallel (N workers)    -- must produce identical results,
3. serial, warm cache      -- every job replays from the JSONL store.

Shape requirements: parallel results equal serial results job-for-job
(the determinism invariant the runner guarantees), a warm-cache re-run is
dramatically faster than compiling, and every warm-run result is marked
``cached``.  The recorded table is what EXPERIMENTS.md quotes for the
runner's speedup/caching claims.
"""

import multiprocessing
import os
import tempfile
import time

from conftest import record, record_bench_json

from repro.machine.presets import paper_qrf_machines
from repro.runner import ResultCache, RunnerConfig, run_jobs, sweep
from repro.workloads.corpus import bench_corpus

SAMPLE = 64
#: at least 2 so the process-pool path runs even on single-CPU boxes
#: (where the interesting numbers are the cache ones, not the speedup)
N_WORKERS = max(2, min(4, multiprocessing.cpu_count() or 1))


def _timed(jobs, config=None):
    t0 = time.perf_counter()
    results = run_jobs(jobs, config)
    return results, time.perf_counter() - t0


def test_runner_parallel_speedup_and_cache(benchmark):
    loops = bench_corpus(SAMPLE)
    jobs = sweep(loops, paper_qrf_machines(),
                 [dict(copies=True, allocate=True)])

    serial, t_serial = _timed(jobs)

    def parallel_run():
        return _timed(jobs, RunnerConfig(n_workers=N_WORKERS))

    parallel, t_parallel = benchmark.pedantic(parallel_run, rounds=1,
                                              iterations=1)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(os.path.join(tmp, "cache"))
        cold, t_cold = _timed(jobs, RunnerConfig(cache=cache))
        warm, t_warm = _timed(jobs, RunnerConfig(cache=cache))

    lines = [
        "R1 -- sweep runner: parallel speedup and cache-hit replay",
        "",
        f"jobs: {len(jobs)}  workers: {N_WORKERS}",
        f"serial (no cache):   {t_serial:8.2f}s",
        f"parallel ({N_WORKERS} workers): {t_parallel:8.2f}s   "
        f"speedup {t_serial / max(t_parallel, 1e-9):.2f}x",
        f"cold cache run:      {t_cold:8.2f}s",
        f"warm cache run:      {t_warm:8.2f}s   "
        f"replay speedup {t_cold / max(t_warm, 1e-9):.1f}x",
    ]
    record("runner_parallel", "\n".join(lines))
    record_bench_json(
        "runner_parallel", t_serial, corpus_size=len(loops),
        n_jobs=len(jobs), n_workers=N_WORKERS,
        parallel_speedup=round(t_serial / max(t_parallel, 1e-9), 2),
        cache_replay_speedup=round(t_cold / max(t_warm, 1e-9), 1))

    # determinism: parallel and cached sweeps replay the serial results
    assert parallel == serial
    assert warm == serial
    assert all(r.cached for r in warm)
    assert not any(r.cached for r in cold)
    # a warm cache must beat recompiling by a wide margin
    assert t_warm < t_cold / 5

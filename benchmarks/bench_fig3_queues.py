"""E1 -- Fig. 3: queue requirements under copy insertion.

Regenerates the paper's bar groups: the fraction of loops schedulable with
at most 4/8/16/32 queues on the 4/6/12-FU QRF machines, copy operations
inserted.  Shape requirement: the distribution concentrates at <= 32
queues (the paper's "machine configuration required to schedule most of
the loops ... consist of 32 queues").
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import fig3_queue_requirements
from repro.workloads.corpus import bench_corpus


def test_fig3_queue_requirements(benchmark):
    loops = bench_corpus()
    result = run_recorded(
        benchmark, "fig3_queues",
        lambda: fig3_queue_requirements(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {
            "min_covered_le32": min(row[32]
                                    for row in r.by_machine.values())})
    record("fig3_queues", result.render())

    for machine, row in result.by_machine.items():
        # cumulative by construction
        assert row[4] <= row[8] <= row[16] <= row[32], machine
        # paper shape: 32 queues cover (nearly) everything
        assert row[32] >= 0.95, machine
        # and 4 queues are nowhere near enough on their own
        assert row[4] < row[32], machine

"""SC -- scheduler comparison: IMS vs SMS, head to head.

Runs every registered scheduling engine over the bench corpus on the
paper's 4/6/12-FU QRF presets and records the comparison table
EXPERIMENTS.md quotes.  Shape requirements:

* both engines schedule every loop (the corpus is schedulable by
  construction);
* SMS achieves II == MII on >= 80% of the loops where IMS does (the
  acceptance headline; in practice it is ~100%);
* SMS is backtrack-free (zero evictions) and needs no more placement
  attempts than IMS;
* SMS's lifetime-minimising placement shows up as conventional-RF
  register demand (MaxLive) no worse than IMS's on every preset.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import exp_scheduler_compare
from repro.workloads.corpus import bench_corpus


def test_scheduler_compare(benchmark):
    loops = bench_corpus()
    result = run_recorded(
        benchmark, "scheduler_compare",
        lambda: exp_scheduler_compare(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {
            f"mii_match_{m}_{s}": r.mii_match[(m, s)]
            for m in r.machines for s in r.schedulers})
    record("scheduler_compare", result.render())

    assert set(result.schedulers) >= {"ims", "sms"}
    assert len(result.machines) >= 3
    for m in result.machines:
        ims, sms = (m, "ims"), (m, "sms")
        assert result.n_failed[ims] == 0 and result.n_failed[sms] == 0
        # acceptance criterion: SMS keeps (nearly) all of IMS's MII hits
        assert result.mii_match[sms] >= 0.8, m
        # near-backtrack-free search
        assert result.mean_evictions[sms] == 0.0
        assert (result.mean_attempts[sms]
                <= result.mean_attempts[ims] + 1e-9), m
        # lifetime-minimising placement: no extra register pressure
        assert (result.mean_max_live[sms]
                <= result.mean_max_live[ims] + 0.5), m

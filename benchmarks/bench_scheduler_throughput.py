"""Compiler-throughput micro-benchmarks (classic pytest-benchmark usage).

Not a paper figure: these time the pipeline's own stages so performance
regressions in the scheduler/allocator show up in CI.  Rounds > 1, real
statistics.
"""

import pytest

from conftest import record_bench_stats

from repro.ir.copyins import insert_copies
from repro.ir.unroll import unroll
from repro.machine.cluster import make_clustered
from repro.machine.presets import qrf_machine
from repro.regalloc.queues import allocate_for_schedule
from repro.sched.ims import modulo_schedule
from repro.sched.mii import mii_report
from repro.sched.partition import partitioned_schedule
from repro.workloads.corpus import paper_corpus
from repro.workloads.kernels import daxpy


@pytest.fixture(scope="module")
def medium_loop():
    """A realistic mid-size body: daxpy x8 + copies (~45 ops)."""
    return insert_copies(unroll(daxpy(), 8)).ddg


@pytest.fixture(scope="module")
def corpus_slice():
    return paper_corpus()[:24]


def test_throughput_mii(benchmark, corpus_slice):
    m = qrf_machine(12)
    benchmark(lambda: [mii_report(l, m) for l in corpus_slice])
    record_bench_stats(benchmark, "throughput_mii",
                       corpus_size=len(corpus_slice))


def test_throughput_copy_insertion(benchmark, corpus_slice):
    benchmark(lambda: [insert_copies(l) for l in corpus_slice])
    record_bench_stats(benchmark, "throughput_copy_insertion",
                       corpus_size=len(corpus_slice))


def test_throughput_ims(benchmark, medium_loop):
    m = qrf_machine(12)
    sched = benchmark(lambda: modulo_schedule(medium_loop, m))
    assert sched.ii >= 1
    record_bench_stats(benchmark, "throughput_ims",
                       n_ops=medium_loop.n_ops, ii=sched.ii)


def test_throughput_partitioned(benchmark, medium_loop):
    cm = make_clustered(4)
    sched = benchmark(lambda: partitioned_schedule(medium_loop, cm))
    assert sched.ii >= 1
    record_bench_stats(benchmark, "throughput_partitioned",
                       n_ops=medium_loop.n_ops, ii=sched.ii)


def test_throughput_queue_allocation(benchmark, medium_loop):
    m = qrf_machine(12)
    sched = modulo_schedule(medium_loop, m)
    usage = benchmark(lambda: allocate_for_schedule(sched))
    assert usage.total_queues >= 1
    record_bench_stats(benchmark, "throughput_queue_allocation",
                       n_ops=medium_loop.n_ops,
                       total_queues=usage.total_queues)

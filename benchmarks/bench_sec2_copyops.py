"""E2 -- Section 2 text: the cost of copy operations.

The paper: "around 95% of the loops [keep] the same II after the insertion
of copy operations ... [for the rest] an increase in its value (tolerable
in most of the cases)" and the stage count rarely changes.  Our corpus
reproduces the shape (large majority unchanged, changes mostly +1 cycle);
the absolute fraction depends on how often recurrence producers feed extra
consumers (EXPERIMENTS.md discusses the gap).
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import sec2_copy_impact
from repro.workloads.corpus import bench_corpus


def test_sec2_copy_impact(benchmark):
    loops = bench_corpus()
    result = run_recorded(
        benchmark, "sec2_copyops",
        lambda: sec2_copy_impact(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {f"same_ii_{m}": v
                           for m, v in r.same_ii.items()})
    record("sec2_copyops", result.render())

    for machine in result.same_ii:
        # large majority keeps the II on every machine
        assert result.same_ii[machine] >= 0.70, machine
        # of the loops that change, the typical increase is one cycle
        assert result.ii_increase_by_1[machine] >= 0.5, machine
    # narrow machines absorb copies best (big II -> plenty of slack)
    assert result.same_ii["queu-4fu"] >= result.same_ii["queu-12fu"] - 0.02

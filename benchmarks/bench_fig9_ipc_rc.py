"""E8 -- Fig. 9: IPC restricted to resource-constrained loops.

Same sweep as Fig. 8 but, per machine point, only over loops whose MII is
bound by the FUs rather than by recurrences (``ResMII >= RecMII``) -- "an
insight on how well this architecture model deals with programs whose
execution is constrained by the number of available FUs".  Shape
requirements: these loops exploit the machine better than the full
population and keep scaling further.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import fig8_ipc, fig9_ipc_rc
from repro.workloads.corpus import bench_corpus

SAMPLE = 96


def test_fig9_ipc_resource_constrained(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "fig9_ipc_rc",
        lambda: fig9_ipc_rc(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {"static_ipc_18fu": r.static_single[18],
                           "dynamic_ipc_18fu": r.dynamic_single[18]})
    record("fig9_ipc_rc", result.render())

    assert result.static_single[18] > result.static_single[4]
    for n in result.fus:
        assert result.dynamic_single[n] <= result.static_single[n] + 1e-9

    # the resource-constrained population uses the machine at least as
    # well as the full corpus at the widest point
    full = fig8_ipc(loops, fus=(18,), clustered_counts=())
    assert result.static_single[18] >= full.static_single[18] - 1e-9

"""E5 -- Fig. 6: II variation of the clustered machine.

The paper's headline partitioning result: the fraction of loops scheduled
on the 4/5/6-cluster ring at the same II as the equivalent single-cluster
machine is 95 % / 84 % / 52 %, degrading with cluster count because values
cannot move between non-adjacent clusters; increases are "typically of one
cycle only".
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import fig6_ii_variation
from repro.workloads.corpus import bench_corpus


def test_fig6_ii_variation(benchmark):
    loops = bench_corpus()
    result = run_recorded(
        benchmark, "fig6_partition",
        lambda: fig6_ii_variation(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {"same_ii_4cl": r.same_ii[4],
                           "same_ii_5cl": r.same_ii[5],
                           "same_ii_6cl": r.same_ii[6],
                           "mean_increase_6cl": r.mean_increase[6]})
    record("fig6_partition", result.render())

    # paper shape: degradation as the ring grows
    assert result.same_ii[4] >= result.same_ii[5] >= result.same_ii[6]
    # 4 clusters nearly always match the single-cluster II
    assert result.same_ii[4] >= 0.85
    # 6 clusters lose a substantial fraction (paper: down to 52%)
    assert result.same_ii[6] <= result.same_ii[4]
    # increases are small
    for n in (4, 5, 6):
        if result.mean_increase[n]:
            assert result.mean_increase[n] <= 3.0

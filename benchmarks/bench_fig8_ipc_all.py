"""E7 -- Fig. 8: operations issued per cycle, all loops, 4-18 FUs.

Regenerates the four series of the paper's Fig. 8: static and dynamic IPC
for single-cluster machines over the full 4..18-FU sweep, with the
clustered machines (4/5/6 clusters) overlaid at 12/15/18 FUs.  Shape
requirements: IPC grows with width but saturates (recurrence-bound loops
stop scaling); dynamic < static (prologue/epilogue drag); clustered at or
below single-cluster.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import fig8_ipc
from repro.workloads.corpus import bench_corpus

#: the sweep is the most expensive bench: 15 machine points x corpus
SAMPLE = 96


def test_fig8_ipc_all_loops(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "fig8_ipc_all",
        lambda: fig8_ipc(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {"static_ipc_18fu": r.static_single[18],
                           "dynamic_ipc_18fu": r.dynamic_single[18]})
    record("fig8_ipc_all", result.render())

    # growth with machine width, per series
    assert result.static_single[18] > result.static_single[4]
    assert result.dynamic_single[18] > result.dynamic_single[4]
    # dynamic accounts for prologue/epilogue: never above static
    for n in result.fus:
        assert result.dynamic_single[n] <= result.static_single[n] + 1e-9
    # clustered points exist exactly at 12/15/18 and do not beat the
    # unconstrained machine
    assert sorted(result.static_clustered) == [12, 15, 18]
    for n in (12, 15, 18):
        assert result.static_clustered[n] <= \
            result.static_single[n] + 1e-9

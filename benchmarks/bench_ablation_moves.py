"""A3 -- ablation: explicit MOVE ops between non-adjacent clusters.

The paper's conclusion: the 6-cluster degradation (52 % same II) is
"mainly due to the inability to move data values between non-adjacent
clusters" and proposes "a more sophisticated scheme using move operations"
as future work.  This ablation implements that scheme (relaxed cluster
assignment -> MOVE chains on every multi-hop edge -> pinned re-schedule)
and measures how much of the loss it recovers on 5 and 6 clusters.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import ablation_moves
from repro.workloads.corpus import bench_corpus

SAMPLE = 64


def test_ablation_moves(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "ablation_moves",
        lambda: ablation_moves(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {f"with_moves_{n}cl": r.with_moves[n]
                           for n in (5, 6)})
    record("ablation_moves", result.render())

    for n in (5, 6):
        # moves never hurt: the scheduler keeps the strict schedule when
        # it is at least as good
        assert result.with_moves[n] >= result.without_moves[n] - 1e-9

"""E6 -- Section 4 text / Fig. 7: the per-cluster queue budget.

The paper concludes that "a cluster configuration comprising 8 queues for
the private QRF and another 16 queues to implement the communication ring
(8 to be used in each direction) should suffice", with "a small fraction
of loops [requiring] additional resources".
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import sec4_cluster_queues
from repro.workloads.corpus import bench_corpus


def test_sec4_cluster_queues(benchmark):
    loops = bench_corpus()
    result = run_recorded(
        benchmark, "sec4_cluster_queues",
        lambda: sec4_cluster_queues(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {f"fits_budget_{n}cl": r.fits_budget[n]
                           for n in (4, 5, 6)})
    record("sec4_cluster_queues", result.render())

    for n in (4, 5, 6):
        # the 8+8+8 budget covers the vast majority of loops
        assert result.fits_budget[n] >= 0.8, n
        # ring pressure stays low (communication is the minority of
        # lifetimes under the affinity partitioner)
        assert result.p95_ring[n] <= 8, n

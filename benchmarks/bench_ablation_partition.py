"""A2 -- ablation: cluster-choice heuristic (design choice, Section 4).

The paper's partitioner "add[s] some heuristics to the IMS algorithm in
order to avoid communication conflicts" without specifying them.  This
ablation compares cluster-choice policies on the 5-cluster machine:
neighbour affinity (our default), load balancing, naive first-fit, and a
random baseline.  Affinity must beat random; the gap is the value of the
heuristic.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import ablation_partition
from repro.workloads.corpus import bench_corpus

SAMPLE = 64


def test_ablation_partition_strategy(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "ablation_partition",
        lambda: ablation_partition(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {f"same_ii_{s}": v
                           for s, v in r.same_ii.items()})
    record("ablation_partition", result.render())

    from repro.sched.partitioners import available_partitioners

    same = result.same_ii
    assert set(same) == set(available_partitioners())
    # finding: once forced placement + deadlock aging are in place, the
    # cluster-choice policy matters surprisingly little (all strategies
    # land within a few points) -- the backtracking machinery, not the
    # greedy choice, carries the result.  Affinity must stay within noise
    # of the best.
    best = max(same.values())
    assert same["affinity"] >= best - 0.06
    # and every strategy produces a usable partitioner
    for strat, frac in same.items():
        assert frac >= 0.5, strat

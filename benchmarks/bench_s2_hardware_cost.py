"""S2 -- supplementary: register-file hardware complexity.

Quantifies the paper's Section 4 motivation ("a 12 FUs machine ... would
demand a 36 port register file, an unrealistic design"): prices the
monolithic multi-ported RF against the single-ported queue banks at equal
machine width, with register demand measured on the corpus rather than
assumed.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import hardware_cost
from repro.workloads.corpus import bench_corpus

SAMPLE = 96


def test_s2_hardware_cost(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "s2_hardware_cost",
        lambda: hardware_cost(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {"machine_widths": sorted(r.rows)})
    record("s2_hardware_cost", result.render())

    for n_fus, (mono, flat, clustered) in result.rows.items():
        # the paper's exact number at 12 FUs
        if n_fus == 12:
            assert mono.ports == 36
        # the QRF access path never slows down with machine width; the
        # monolithic RF does
        assert clustered.relative_delay < mono.relative_delay
        # area per storage cell: ports^2 kills the monolithic design
        assert (clustered.area / clustered.storage_cells
                < mono.area / mono.storage_cells)
    # and the monolithic delay diverges with width
    widths = sorted(result.rows)
    assert result.rows[widths[-1]][0].relative_delay > \
        result.rows[widths[0]][0].relative_delay

"""R2 -- sweep service: warm-cache QPS and in-flight dedup ratio.

Spins the HTTP daemon up on a background thread against a fresh sharded
cache, then measures the two service-level properties the front door
exists for:

1. *warm-cache QPS* -- after one cold sweep primes the shards, a burst
   of repeat ``POST /jobs`` requests must be answered from the cache at
   interactive rates (no recompiles, hit counters climbing),
2. *in-flight dedup* -- N clients racing the same cold job spec trigger
   exactly one compile between them; the rest coalesce onto the first
   request's future.

Shape requirements: the warm burst performs zero compiles, every warm
response is marked ``cached``, the dedup race compiles once, and warm
QPS clears a conservative floor (pure cache replay over loopback HTTP).
The recorded table is what EXPERIMENTS.md quotes for the service's
throughput/dedup claims.
"""

import http.client
import json
import tempfile
import threading
import time

from conftest import record, record_bench_json

from repro.runner import ShardedResultCache
from repro.service import SweepService, kernel_job_spec, start_in_thread
from repro.workloads.kernels import KERNELS

#: every named kernel on the 4-FU queue machine -- small enough to prime
#: in seconds, wide enough that the warm burst touches many shards
SPECS = [kernel_job_spec(name) for name in sorted(KERNELS)]
WARM_ROUNDS = 8
DEDUP_CLIENTS = 6


def _post(host, port, payload, timeout=300):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("POST", "/jobs", json.dumps(payload),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return json.loads(response.read())
    finally:
        conn.close()


def test_service_warm_qps_and_dedup(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        handle = start_in_thread(
            SweepService(ShardedResultCache(tmp + "/cache"), n_workers=1))
        host, port = handle.address
        try:
            # prime: one cold sweep compiles the whole kernel suite
            t0 = time.perf_counter()
            status, cold = _post(host, port, {"jobs": SPECS})
            t_cold = time.perf_counter() - t0
            assert status == 200
            assert not any(r["cached"] for r in cold["results"])

            # warm burst: repeat the sweep, every answer from the shards
            def warm_burst():
                t0 = time.perf_counter()
                for _ in range(WARM_ROUNDS):
                    status, warm = _post(host, port, {"jobs": SPECS})
                    assert status == 200
                    assert all(r["cached"] for r in warm["results"])
                return time.perf_counter() - t0

            t_warm = benchmark.pedantic(warm_burst, rounds=1,
                                        iterations=1)
            warm_jobs = WARM_ROUNDS * len(SPECS)
            qps = warm_jobs / max(t_warm, 1e-9)

            # dedup race: clients hammer one cold spec concurrently
            race_spec = kernel_job_spec("daxpy", n_clusters=4)
            pre = _get(host, port, "/metrics.json")["service"]
            outs = [None] * DEDUP_CLIENTS

            def race(i):
                outs[i] = _post(host, port, race_spec)

            threads = [threading.Thread(target=race, args=(i,))
                       for i in range(DEDUP_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(300)
            assert all(s == 200 for s, _ in outs)
            baseline = outs[0][1]["results"][0]["outcome"]
            assert all(o[1]["results"][0]["outcome"] == baseline
                       for o in outs)

            post = _get(host, port, "/metrics.json")["service"]
            compiled = post["compiled"] - pre["compiled"]
            coalesced = (post["dedup_inflight"] - pre["dedup_inflight"]) \
                + (post["served_from_cache"] - pre["served_from_cache"])
            metrics = _get(host, port, "/metrics.json")
        finally:
            handle.stop()

    dedup_ratio = coalesced / DEDUP_CLIENTS
    lines = [
        "R2 -- sweep service: warm-cache QPS and in-flight dedup",
        "",
        f"jobs/sweep: {len(SPECS)}  warm rounds: {WARM_ROUNDS}",
        f"cold sweep:          {t_cold:8.2f}s",
        f"warm burst:          {t_warm:8.2f}s   "
        f"({warm_jobs} jobs, {qps:,.0f} jobs/s)",
        f"dedup race:          {DEDUP_CLIENTS} clients, "
        f"{compiled} compile(s), dedup ratio {dedup_ratio:.2f}",
        f"cache backend:       {metrics['cache']['backend']} "
        f"({metrics['cache']['entries']} entries, "
        f"{metrics['cache']['bytes']} bytes)",
    ]
    record("service_throughput", "\n".join(lines))
    record_bench_json(
        "service_throughput", t_warm, n_jobs=len(SPECS),
        warm_rounds=WARM_ROUNDS, warm_qps=round(qps, 1),
        cold_sweep_s=round(t_cold, 3),
        dedup_clients=DEDUP_CLIENTS, dedup_compiles=compiled,
        dedup_ratio=round(dedup_ratio, 2))

    # one compile between all racing clients; everyone else coalesced
    assert compiled == 1
    assert coalesced == DEDUP_CLIENTS - 1
    # warm replay over loopback HTTP clears a conservative QPS floor
    assert qps > 50

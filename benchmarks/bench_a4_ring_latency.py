"""A4 -- sensitivity: inter-cluster forwarding latency.

The paper's ring queues are "used to allocate registers as if they were a
cluster private QRF" -- zero extra latency for crossing to an adjacent
cluster.  This sensitivity study re-runs the Fig. 6 experiment with 1 and
2 extra cycles per crossing: if the headline results held only at exactly
zero, the architecture would be fragile; a graceful decline validates the
design margin.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import ring_latency_sensitivity
from repro.workloads.corpus import bench_corpus

SAMPLE = 48


def test_a4_ring_latency(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "a4_ring_latency",
        lambda: ring_latency_sensitivity(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {f"same_ii_xlat{x}_4cl": r.same_ii[x][4]
                           for x in (0, 1, 2)})
    record("a4_ring_latency", result.render())

    same = result.same_ii
    for n in (4, 6):
        # more latency can only hurt (same or worse), and the decline is
        # graceful, not a cliff
        assert same[0][n] >= same[1][n] - 1e-9
        assert same[1][n] >= same[2][n] - 0.05
        assert same[2][n] >= same[0][n] - 0.35
    # the cluster-count ordering from Fig. 6 survives added latency
    for xlat in (0, 1, 2):
        assert same[xlat][4] >= same[xlat][6]

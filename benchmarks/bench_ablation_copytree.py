"""A1 -- ablation: copy fan-out tree strategy (design choice, Section 2).

Compares the three tree shapes on the 12-FU machine: a linear chain
(consumer i behind i copies), a balanced tree (log depth for all), and the
default slack-aware Huffman tree (recurrence-circuit edges shallowest).
The slack strategy should preserve the no-copy II at least as often as the
alternatives.
"""

from conftest import record, run_recorded, runner_from_env

from repro.analysis.experiments import ablation_copy_tree
from repro.workloads.corpus import bench_corpus

SAMPLE = 80


def test_ablation_copy_tree(benchmark):
    loops = bench_corpus(SAMPLE)
    result = run_recorded(
        benchmark, "ablation_copytree",
        lambda: ablation_copy_tree(loops, runner=runner_from_env()),
        corpus_size=len(loops),
        metrics=lambda r: {f"same_ii_{s}": v
                           for s, v in r.same_ii.items()})
    record("ablation_copytree", result.render())

    assert set(result.same_ii) == {"chain", "balanced", "slack"}
    # finding: with realistic fan-outs (mostly 2-3 consumers) the tree
    # shape barely matters -- all strategies land within a couple of
    # points of each other; the slack-aware tree must not be *worse*
    # than the naive chain beyond noise
    assert result.same_ii["slack"] >= result.same_ii["chain"] - 0.03
    assert result.same_ii["slack"] >= result.same_ii["balanced"] - 0.03
    # and never needs more queues on average than the chain beyond noise
    assert result.mean_queues["slack"] <= result.mean_queues["chain"] + 1.0
